//! Static lock-order lint against a declared manifest.
//!
//! The runtime lockdep graph ([`mvc_core::lock`]) only sees the
//! acquisition orders a particular run happens to execute. This pass is
//! its static complement: the repo declares every audited lock and one
//! global acquisition order in `analysis/locks.toml`, and the lint
//! checks the pipeline crates' source against it:
//!
//! * **undeclared-lock** — an `AuditedMutex::new("…")` /
//!   `AuditedRwLock::new("…")` construction whose name is missing from
//!   the manifest's `[order]` list. Every audited lock must be declared
//!   so its ordering constraints are reviewable in one place.
//! * **stale-manifest** — a manifest entry no scanned file constructs.
//!   Dead declarations rot: the next reader trusts an order constraint
//!   that no code enforces.
//! * **unknown-receiver** — a `.lock()` / `.read()` / `.write()`
//!   acquisition through a receiver the manifest's per-crate `[vars.*]`
//!   table does not map to a lock name. An unmapped acquisition is one
//!   the order check silently skips, so it must be either mapped or
//!   `seal:`-justified.
//! * **order-inversion** — a statically visible nested acquisition
//!   (guard held via a `let` binding, or two acquisitions on one line,
//!   which in Rust nest left-to-right through temporary guard
//!   lifetimes) that contradicts the declared order.
//!
//! Matching runs on the same comment/string-stripped line model as
//! [`crate::lint`]. Acquisition patterns require *empty* parens —
//! `w.read(&changed)` is a warehouse snapshot read, not a lock — and
//! only the production region of each file is scanned (everything
//! before `#[cfg(test)]`); test fixtures lock whatever they like.
//! Cross-function nesting (a callee taking its own lock) is invisible
//! here by design — that is exactly what the runtime lockdep graph
//! covers.

use crate::lint::strip_source;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Which manifest check fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockRule {
    UndeclaredLock,
    StaleManifest,
    UnknownReceiver,
    OrderInversion,
}

impl fmt::Display for LockRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockRule::UndeclaredLock => "undeclared-lock",
            LockRule::StaleManifest => "stale-manifest",
            LockRule::UnknownReceiver => "unknown-receiver",
            LockRule::OrderInversion => "order-inversion",
        };
        f.write_str(s)
    }
}

/// One manifest-check hit, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct LockLintFinding {
    pub file: String,
    pub line: usize,
    pub rule: LockRule,
    pub message: String,
}

impl fmt::Display for LockLintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Parsed `analysis/locks.toml`: the global acquisition order plus the
/// per-crate receiver→lock maps the static scanner needs (it sees
/// `warehouse.lock()`, not the lock's registered name).
#[derive(Debug, Clone, Default)]
pub struct LockManifest {
    /// Lock names in declared acquisition order (earlier acquired first).
    pub order: Vec<String>,
    /// `crate key → (receiver identifier → lock name)`.
    pub vars: BTreeMap<String, BTreeMap<String, String>>,
}

impl LockManifest {
    /// Hand-rolled parser for the TOML subset the manifest uses:
    /// `[section]` headers, `key = "value"` pairs, one `locks = [...]`
    /// string array (single- or multi-line), `#` comments. No external
    /// TOML dependency.
    pub fn parse(text: &str) -> Result<LockManifest, String> {
        let mut m = LockManifest::default();
        let mut section = String::new();
        let mut in_locks_array = false;
        for (n, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                // `#` never appears inside the manifest's quoted strings.
                Some(p) => &raw[..p],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if in_locks_array {
                m.order.extend(quoted_strings(line));
                if line.contains(']') {
                    in_locks_array = false;
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                section = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {}: unterminated section header", n + 1))?
                    .to_string();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", n + 1))?;
            let (key, value) = (key.trim(), value.trim());
            if section == "order" && key == "locks" {
                m.order.extend(quoted_strings(value));
                in_locks_array = value.contains('[') && !value.contains(']');
            } else if let Some(krate) = section.strip_prefix("vars.") {
                let name = quoted_strings(value)
                    .pop()
                    .ok_or_else(|| format!("line {}: expected a quoted lock name", n + 1))?;
                m.vars
                    .entry(krate.to_string())
                    .or_default()
                    .insert(key.to_string(), name);
            } else {
                return Err(format!("line {}: unexpected entry in [{section}]", n + 1));
            }
        }
        if m.order.is_empty() {
            return Err("manifest declares no [order] locks".into());
        }
        let dup: BTreeSet<_> = m.order.iter().collect();
        if dup.len() != m.order.len() {
            return Err("duplicate lock name in [order]".into());
        }
        for names in m.vars.values() {
            for v in names.values() {
                if !m.order.contains(v) {
                    return Err(format!("[vars] maps to undeclared lock `{v}`"));
                }
            }
        }
        Ok(m)
    }

    fn rank(&self, name: &str) -> Option<usize> {
        self.order.iter().position(|n| n == name)
    }
}

/// The string contents of every `"…"` on one line.
fn quoted_strings(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(start) = rest.find('"') {
        let Some(len) = rest[start + 1..].find('"') else {
            break;
        };
        out.push(rest[start + 1..start + 1 + len].to_string());
        rest = &rest[start + len + 2..];
    }
    out
}

/// Which `[vars.*]` table applies to a repo-relative path.
fn crate_key(path: &str) -> Option<&'static str> {
    for key in ["whips", "readpath", "warehouse"] {
        if path.contains(&format!("{key}/src/")) {
            return Some(key);
        }
    }
    None
}

/// Lock names constructed on this raw line (or the next — rustfmt may
/// wrap the name onto its own line). The *stripped* line located the
/// construction; the name must come from the raw source because `strip`
/// blanks string contents.
fn construction_names(raw: &[&str], idx: usize) -> Vec<String> {
    for probe in [idx, idx + 1] {
        if let Some(line) = raw.get(probe) {
            let names = quoted_strings(line);
            if !names.is_empty() {
                return names;
            }
        }
    }
    Vec::new()
}

/// The receiver identifiers acquiring a lock on this stripped line, in
/// textual order. Only empty-paren `.lock()` / `.read()` / `.write()`
/// count as acquisitions.
fn acquisitions(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for pat in [".lock()", ".read()", ".write()"] {
        let mut rest = code;
        let mut off = 0;
        while let Some(p) = rest.find(pat) {
            let abs = off + p;
            let before = &code[..abs];
            let ident_start = before
                .rfind(|c: char| !c.is_alphanumeric() && c != '_')
                .map_or(0, |q| q + 1);
            let ident = &before[ident_start..];
            if !ident.is_empty() && !ident.chars().next().unwrap().is_ascii_digit() {
                out.push((abs, ident.to_string()));
            }
            off = abs + pat.len();
            rest = &code[off..];
        }
    }
    out.sort();
    out
}

/// Lint one file's source against the manifest. `path` is the
/// repo-relative path; `constructed` collects every lock name this file
/// constructs (for the cross-file stale-manifest check).
pub fn lock_lint_file(
    path: &str,
    source: &str,
    manifest: &LockManifest,
    constructed: &mut BTreeSet<String>,
) -> Vec<LockLintFinding> {
    let mut findings = Vec::new();
    let Some(krate) = crate_key(path) else {
        return findings;
    };
    // Production region only: test fixtures lock whatever they like.
    let prod = match source.find("#[cfg(test)]") {
        Some(p) => &source[..p],
        None => source,
    };
    let lines = strip_source(prod);
    let raw: Vec<&str> = prod.lines().collect();
    let vars = manifest.vars.get(krate);
    let finding = |line: usize, rule: LockRule, message: String| LockLintFinding {
        file: path.to_string(),
        line: line + 1,
        rule,
        message,
    };
    let sealed = |idx: usize| {
        let lo = idx.saturating_sub(3);
        raw[lo..=idx.min(raw.len().saturating_sub(1))]
            .iter()
            .any(|l| l.contains("seal:"))
    };

    // Let-bound guards currently in scope: (brace depth, lock name).
    let mut held: Vec<(i64, String)> = Vec::new();
    let mut depth: i64 = 0;

    for (idx, l) in lines.iter().enumerate() {
        let code = l.code.as_str();

        // Audited constructions: names must be declared.
        for pat in ["AuditedMutex::new(", "AuditedRwLock::new("] {
            if code.contains(pat) {
                for name in construction_names(&raw, idx) {
                    constructed.insert(name.clone());
                    if manifest.rank(&name).is_none() {
                        findings.push(finding(
                            idx,
                            LockRule::UndeclaredLock,
                            format!(
                                "lock `{name}` is constructed here but not declared in \
                                 analysis/locks.toml [order]"
                            ),
                        ));
                    }
                }
            }
        }

        // Acquisitions: map receivers, record same-line nesting and
        // nesting under live let-bound guards, check the declared order.
        let acqs = acquisitions(code);
        let mut line_locks: Vec<String> = Vec::new();
        for (_, recv) in &acqs {
            let Some(name) = vars.and_then(|v| v.get(recv)) else {
                if !sealed(idx) {
                    findings.push(finding(
                        idx,
                        LockRule::UnknownReceiver,
                        format!(
                            "acquisition through `{recv}` is not mapped in \
                             analysis/locks.toml [vars.{krate}]; map it or add a `seal:` \
                             justification within the three preceding lines"
                        ),
                    ));
                }
                continue;
            };
            let outer = held
                .iter()
                .map(|(_, n)| n)
                .chain(line_locks.iter())
                .cloned()
                .collect::<Vec<_>>();
            for held_name in outer {
                if held_name == *name {
                    continue;
                }
                if let (Some(h), Some(a)) = (manifest.rank(&held_name), manifest.rank(name)) {
                    if a < h {
                        findings.push(finding(
                            idx,
                            LockRule::OrderInversion,
                            format!(
                                "acquires `{name}` while holding `{held_name}`, but the \
                                 manifest orders `{name}` before `{held_name}`"
                            ),
                        ));
                    }
                }
            }
            line_locks.push(name.clone());
        }

        // A `let`-bound guard stays held until its block closes.
        if code.trim_start().starts_with("let ") {
            if let Some(name) = line_locks.first() {
                held.push((depth, name.clone()));
            }
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    held.retain(|(d, _)| *d <= depth);
                }
                _ => {}
            }
        }
    }
    findings
}

/// Walk the lock-audited crates under `root` and lint every production
/// `.rs` file against the manifest, including the cross-file
/// stale-manifest check.
pub fn lock_lint_tree(root: &Path, manifest: &LockManifest) -> io::Result<Vec<LockLintFinding>> {
    let mut findings = Vec::new();
    let mut constructed = BTreeSet::new();
    for dir in [
        "crates/whips/src",
        "crates/readpath/src",
        "crates/warehouse/src",
    ] {
        let dir_path = root.join(dir);
        if !dir_path.is_dir() {
            continue;
        }
        let mut files: Vec<_> = fs::read_dir(&dir_path)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        files.sort();
        for f in files {
            let source = fs::read_to_string(&f)?;
            let rel = f
                .strip_prefix(root)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(lock_lint_file(&rel, &source, manifest, &mut constructed));
        }
    }
    for name in &manifest.order {
        if !constructed.contains(name) {
            findings.push(LockLintFinding {
                file: "analysis/locks.toml".into(),
                line: 0,
                rule: LockRule::StaleManifest,
                message: format!(
                    "declared lock `{name}` is never constructed in the scanned crates"
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> LockManifest {
        LockManifest::parse(
            r#"
# test manifest
[order]
locks = [
    "whips.cluster",   # outermost
    "whips.warehouse",
    "whips.commit_log",
]

[vars.whips]
cluster = "whips.cluster"
warehouse = "whips.warehouse"
commit_log = "whips.commit_log"
"#,
        )
        .unwrap()
    }

    #[test]
    fn manifest_parses_order_and_vars() {
        let m = manifest();
        assert_eq!(
            m.order,
            vec!["whips.cluster", "whips.warehouse", "whips.commit_log"]
        );
        assert_eq!(m.vars["whips"]["warehouse"], "whips.warehouse");
        assert!(LockManifest::parse("[order]\nlocks = []\n").is_err());
        assert!(
            LockManifest::parse("[order]\nlocks = [\"a\"]\n[vars.x]\ny = \"zzz\"\n").is_err(),
            "vars must map to declared locks"
        );
    }

    #[test]
    fn undeclared_construction_is_flagged_and_declared_is_not() {
        let m = manifest();
        let mut built = BTreeSet::new();
        let src = "let a = AuditedMutex::new(\"whips.cluster\", 0);\nlet b = AuditedMutex::new(\n    \"whips.rogue\",\n    1,\n);\n";
        let hits = lock_lint_file("crates/whips/src/threaded.rs", src, &m, &mut built);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, LockRule::UndeclaredLock);
        assert!(hits[0].message.contains("whips.rogue"));
        assert!(built.contains("whips.cluster"));
    }

    #[test]
    fn order_inversion_through_let_guard_is_flagged() {
        let m = manifest();
        let mut built = BTreeSet::new();
        // Held commit_log, then acquires warehouse: inverted.
        let bad = "fn f() {\n    let log = commit_log.lock();\n    let w = warehouse.lock();\n}\n";
        let hits = lock_lint_file("crates/whips/src/threaded.rs", bad, &m, &mut built);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, LockRule::OrderInversion);
        assert_eq!(hits[0].line, 3);
        assert!(hits[0].message.contains("whips.warehouse"));
        assert!(hits[0].message.contains("whips.commit_log"));

        // The declared order is clean, and a guard released by its
        // closing brace no longer constrains later acquisitions.
        let ok = "fn f() {\n    {\n        let w = warehouse.lock();\n        commit_log.lock().push(1);\n    }\n    let log = commit_log.lock();\n}\nfn g() {\n    let w = warehouse.lock();\n}\n";
        assert!(lock_lint_file("crates/whips/src/threaded.rs", ok, &m, &mut built).is_empty());
    }

    #[test]
    fn same_line_nesting_counts_as_an_edge() {
        let m = manifest();
        let mut built = BTreeSet::new();
        // Temporary guards on one line nest left-to-right: inverted here.
        let bad = "let q = commit_log.lock().len() == 0 && warehouse.lock().len() == 0;\n";
        let hits = lock_lint_file("crates/whips/src/sim.rs", bad, &m, &mut built);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, LockRule::OrderInversion);
        let ok = "let q = warehouse.lock().len() == 0 && commit_log.lock().len() == 0;\n";
        assert!(lock_lint_file("crates/whips/src/sim.rs", ok, &m, &mut built).is_empty());
    }

    #[test]
    fn unknown_receiver_needs_mapping_or_seal() {
        let m = manifest();
        let mut built = BTreeSet::new();
        let bad = "let g = mystery.lock();\n";
        let hits = lock_lint_file("crates/whips/src/threaded.rs", bad, &m, &mut built);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, LockRule::UnknownReceiver);
        assert!(hits[0].message.contains("vars.whips"));

        let sealed = "// seal: fixture lock outside the audit\nlet g = mystery.lock();\n";
        assert!(lock_lint_file("crates/whips/src/threaded.rs", sealed, &m, &mut built).is_empty());

        // Non-empty parens are data reads, not acquisitions.
        let data = "let rows = w.read(&changed);\n";
        assert!(lock_lint_file("crates/whips/src/threaded.rs", data, &m, &mut built).is_empty());
    }

    #[test]
    fn test_region_and_foreign_paths_are_skipped() {
        let m = manifest();
        let mut built = BTreeSet::new();
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let g = mystery.lock(); }\n}\n";
        assert!(lock_lint_file("crates/whips/src/threaded.rs", src, &m, &mut built).is_empty());
        assert!(lock_lint_file(
            "crates/core/src/lock.rs",
            "let g = mystery.lock();",
            &m,
            &mut built
        )
        .is_empty());
    }
}
