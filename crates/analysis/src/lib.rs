//! # mvc-analysis
//!
//! Protocol analysis toolchain for the MVC reproduction. Five pillars:
//!
//! * the **pipeline state machine** ([`pipeline`]): the VM →
//!   merge-process → warehouse-applier dataflow with every scheduler
//!   decision exposed as a named, replayable [`schedule::Choice`];
//! * the **schedule explorer** ([`mod@explore`]): bounded exhaustive DFS
//!   over interleavings with sleep-set partial-order reduction, each
//!   complete schedule certified by the consistency oracle and each
//!   violation serialized as a replayable [`schedule::ScheduleId`];
//! * the **durable explorer** ([`durable`]): every complete schedule the
//!   explorer certifies is replayed on a WAL-journaling pipeline and
//!   crash-recovered at every record prefix of its log, the stitched
//!   history certified again — scheduling nondeterminism × crash points
//!   in one sweep;
//! * the **protocol lint** ([`lint`]): a hand-rolled token-level scanner
//!   enforcing this repo's concurrency hygiene rules (see the
//!   `protocol_lint` binary);
//! * the **lock-manifest lint** ([`locklint`]): checks the pipeline
//!   crates' audited-lock constructions and statically visible
//!   acquisition nesting against the declared order in
//!   `analysis/locks.toml` (see the `lock_lint` binary) — the static
//!   complement of the runtime lockdep graph in `mvc_core::lock`.
//!
//! Everything is self-contained and offline: no solver, no external
//! model checker, no new dependencies.

#![forbid(unsafe_code)]

pub mod durable;
pub mod explore;
pub mod lint;
pub mod locklint;
pub mod pipeline;
pub mod schedule;

pub use durable::{explore_durably, DurableExploreConfig, DurableExploreOutcome, PrefixFailure};
pub use explore::{explore, ExploreConfig, ExploreOutcome, Independence, ScheduleViolation};
pub use lint::{lint_file, lint_tree, LintFinding, Rule};
pub use locklint::{lock_lint_file, lock_lint_tree, LockLintFinding, LockManifest, LockRule};
pub use pipeline::{Breakage, Pipeline, PipelineBuilder, PipelineConfig, PipelineError};
pub use schedule::{ChanId, Choice, ScheduleId, ScheduleParseError};
