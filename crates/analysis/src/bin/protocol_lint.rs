//! Repo-specific protocol lint driver.
//!
//! Usage: `protocol_lint [--warn] [ROOT]`
//!
//! Walks `ROOT` (default `.`, skipping `target/`, `vendor/`, `.git/`),
//! applies the concurrency-hygiene rules of `mvc_analysis::lint`, and
//! exits nonzero on any finding unless `--warn` is given. Wired into
//! `ci.sh` in deny mode.

use mvc_analysis::lint::lint_tree;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut warn_only = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--warn" => warn_only = true,
            "--help" | "-h" => {
                println!("usage: protocol_lint [--warn] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let findings = match lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("protocol_lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("protocol_lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("protocol_lint: {} finding(s)", findings.len());
        if warn_only {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
