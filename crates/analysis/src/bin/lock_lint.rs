//! Lock-order manifest lint driver.
//!
//! Usage: `lock_lint [--warn] [ROOT]`
//!
//! Loads `ROOT/analysis/locks.toml`, scans the lock-audited crates
//! (`crates/whips/src`, `crates/readpath/src`, `crates/warehouse/src`)
//! with `mvc_analysis::locklint`, and exits nonzero on any finding
//! unless `--warn` is given. Wired into `ci.sh`'s `lock_audit` stage in
//! deny mode.

use mvc_analysis::locklint::{lock_lint_tree, LockManifest};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut warn_only = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--warn" => warn_only = true,
            "--help" | "-h" => {
                println!("usage: lock_lint [--warn] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let manifest_path = root.join("analysis/locks.toml");
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lock_lint: cannot read {}: {e}", manifest_path.display());
            return ExitCode::FAILURE;
        }
    };
    let manifest = match LockManifest::parse(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("lock_lint: bad manifest {}: {e}", manifest_path.display());
            return ExitCode::FAILURE;
        }
    };

    let findings = match lock_lint_tree(&root, &manifest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lock_lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("lock_lint: clean ({} declared locks)", manifest.order.len());
        ExitCode::SUCCESS
    } else {
        println!("lock_lint: {} finding(s)", findings.len());
        if warn_only {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
