//! Bounded exhaustive exploration of pipeline interleavings with
//! sleep-set partial-order reduction, every explored schedule certified
//! by the consistency oracle.
//!
//! # Soundness of the reduction
//!
//! Sleep sets prune schedules that are Mazurkiewicz-equivalent to one
//! already explored: at a node, after exploring choice `a`, any sibling
//! subtree that starts with a choice independent of everything explored
//! since would only permute independent steps. The reduction is sound
//! for *trace coverage* — every equivalence class of complete schedules
//! keeps at least one representative — provided the independence
//! relation under-approximates true commutativity. Ours is derived from
//! a static read/write footprint per choice (see [`Independence`]): two
//! choices are declared independent only when they touch disjoint
//! components, pop distinct channel heads, and push distinct channel
//! tails; FIFO head-pop and tail-push on the same channel commute
//! whenever the pop is enabled, so `Head(c)` and `Tail(c)` are distinct
//! footprint keys. Whatever one choice may do is over-approximated
//! (e.g. delivering a source update may route to *every* view and merge
//! group), which only adds dependence — less pruning, never unsoundness.

use crate::pipeline::{Pipeline, PipelineBuilder, PipelineError};
use crate::schedule::{ChanId, Choice, ScheduleId};
use mvc_core::{ConsistencyLevel, ViewId};
use mvc_whips::{Oracle, Verdict};
use std::collections::BTreeSet;

/// Static read/write footprint key of one choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Key {
    /// Source cluster state (writes by inject, reads by query answering).
    Cluster,
    /// Integrator routing state (update numbering).
    Integrator,
    Vm(ViewId),
    Mp(usize),
    /// Warehouse store + commit log + (broken-applier) reorder buffer —
    /// deliberately one key across merge groups: commit interleaving
    /// across groups is exactly what the oracle must see varied.
    Warehouse,
    Head(ChanId),
    Tail(ChanId),
}

/// The static independence relation over choices.
pub struct Independence {
    views: Vec<ViewId>,
    groups: usize,
    group_of: Vec<(ViewId, usize)>,
}

impl Independence {
    pub fn new(builder: &PipelineBuilder) -> Result<Self, PipelineError> {
        // A throwaway pipeline gives the authoritative view→group map.
        let pipe = builder.build()?;
        let views: Vec<ViewId> = builder.registry().ids().collect();
        let group_of = views.iter().map(|&v| (v, pipe.group_of_view(v))).collect();
        Ok(Independence {
            views,
            groups: pipe.groups(),
            group_of,
        })
    }

    fn group_of(&self, v: ViewId) -> usize {
        self.group_of
            .iter()
            .find(|(w, _)| *w == v)
            .map(|(_, g)| *g)
            .unwrap_or(0)
    }

    fn keys(&self, c: Choice) -> BTreeSet<Key> {
        let mut k = BTreeSet::new();
        match c {
            Choice::Inject => {
                k.insert(Key::Cluster);
                k.insert(Key::Tail(ChanId::SrcToInt));
            }
            Choice::Deliver(ch) => {
                k.insert(Key::Head(ch));
                match ch {
                    ChanId::SrcToInt => {
                        // Routing may reach every view and merge group —
                        // over-approximate the fan-out.
                        k.insert(Key::Integrator);
                        for &v in &self.views {
                            k.insert(Key::Tail(ChanId::IntToVm(v)));
                        }
                        for g in 0..self.groups {
                            k.insert(Key::Tail(ChanId::IntToMp(g)));
                        }
                    }
                    ChanId::IntToVm(v) => {
                        k.insert(Key::Vm(v));
                        k.insert(Key::Tail(ChanId::VmToMp(v)));
                        k.insert(Key::Tail(ChanId::VmToQs(v)));
                    }
                    ChanId::IntToMp(g) => {
                        k.insert(Key::Mp(g));
                        k.insert(Key::Tail(ChanId::MpToWh(g)));
                    }
                    ChanId::VmToMp(v) => {
                        let g = self.group_of(v);
                        k.insert(Key::Mp(g));
                        k.insert(Key::Tail(ChanId::MpToWh(g)));
                    }
                    ChanId::VmToQs(v) => {
                        let _ = v;
                        k.insert(Key::Cluster);
                        k.insert(Key::Tail(ChanId::SrcToInt));
                    }
                    ChanId::MpToWh(g) => {
                        k.insert(Key::Warehouse);
                        k.insert(Key::Tail(ChanId::WhToMp(g)));
                    }
                    ChanId::WhToMp(g) => {
                        k.insert(Key::Mp(g));
                        k.insert(Key::Tail(ChanId::MpToWh(g)));
                    }
                }
            }
        }
        k
    }

    /// Conservative dependence: overlapping footprints.
    pub fn dependent(&self, a: Choice, b: Choice) -> bool {
        if a == b {
            return true;
        }
        let ka = self.keys(a);
        self.keys(b).iter().any(|k| ka.contains(k))
    }

    pub fn independent(&self, a: Choice, b: Choice) -> bool {
        !self.dependent(a, b)
    }
}

/// Exploration bounds and switches.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum schedule length; longer prefixes are cut and counted as
    /// `truncated` (not certified — the run is incomplete).
    pub max_depth: usize,
    /// Stop after this many schedules (complete + truncated).
    pub max_schedules: u64,
    /// Sleep-set partial-order reduction on/off (off = naive DFS, for
    /// measuring the reduction).
    pub por: bool,
    /// Retain every complete schedule in
    /// [`ExploreOutcome::complete_schedules`] — the durable explorer's
    /// work list. Off by default: exhaustive runs can visit tens of
    /// thousands of schedules.
    pub collect: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 80,
            max_schedules: 20_000,
            por: true,
            collect: false,
        }
    }
}

/// One oracle violation found during exploration, with the replayable
/// schedule that produced it.
#[derive(Debug, Clone)]
pub struct ScheduleViolation {
    pub schedule: ScheduleId,
    pub group: usize,
    pub level: ConsistencyLevel,
    pub detail: String,
}

/// Aggregate result of one bounded exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreOutcome {
    /// Complete (quiescent, fully flushed) schedules explored.
    pub complete: u64,
    /// Complete schedules the oracle certified at the guaranteed level.
    pub certified: u64,
    pub violations: Vec<ScheduleViolation>,
    /// Schedules cut by the depth bound.
    pub truncated: u64,
    /// Exploration stopped at `max_schedules`.
    pub capped: bool,
    /// Longest prefix reached.
    pub max_depth_seen: usize,
    /// Enabled choices skipped by the sleep sets (the reduction).
    pub sleep_skips: u64,
    /// Every complete schedule, in exploration order (only populated
    /// with [`ExploreConfig::collect`]).
    pub complete_schedules: Vec<ScheduleId>,
}

impl ExploreOutcome {
    /// Every complete schedule certified and none violated.
    pub fn all_certified(&self) -> bool {
        self.complete == self.certified && self.violations.is_empty()
    }

    pub fn schedules(&self) -> u64 {
        self.complete + self.truncated
    }
}

/// DFS node: candidate choices (enabled minus inherited sleep set) and
/// the live sleep set, which absorbs each candidate after its subtree.
struct Frame {
    cands: Vec<Choice>,
    next: usize,
    sleep: Vec<Choice>,
}

/// Exhaustively explore interleavings of the builder's pipeline within
/// the configured bounds, certifying every complete schedule with the
/// consistency oracle.
///
/// Pipeline state is not cloneable (view managers are trait objects), so
/// the DFS steps incrementally while descending and replays the prefix
/// from a fresh build when switching siblings — replay is cheap at the
/// workload sizes exhaustive exploration can reach anyway.
///
/// ```
/// use mvc_analysis::{explore, ExploreConfig, PipelineBuilder, PipelineConfig};
/// use mvc_core::ViewId;
/// use mvc_relational::{tuple, Schema, ViewDef};
/// use mvc_source::{SourceId, WriteOp};
/// use mvc_whips::sim::WorkloadTxn;
/// use mvc_whips::ManagerKind;
///
/// let mut b = PipelineBuilder::new(PipelineConfig::default())
///     .relation(SourceId(0), "R", Schema::ints(&["a", "b"]));
/// let v = ViewDef::builder("V").from("R").build(b.catalog()).unwrap();
/// let b = b.view(ViewId(1), v, ManagerKind::Complete).workload(vec![WorkloadTxn {
///     source: SourceId(0),
///     writes: vec![WriteOp::insert("R", tuple![1, 2])],
///     global: false,
/// }]);
/// let out = explore(&b, &ExploreConfig::default()).unwrap();
/// assert!(out.complete > 0);
/// assert!(out.all_certified());
/// ```
pub fn explore(
    builder: &PipelineBuilder,
    config: &ExploreConfig,
) -> Result<ExploreOutcome, PipelineError> {
    let indep = Independence::new(builder)?;
    let mut out = ExploreOutcome::default();

    let mut first = builder.build()?;
    let root_enabled = first.ready()?;
    if root_enabled.is_empty() {
        // Empty workload: the single empty schedule.
        certify(first, &ScheduleId::default(), &mut out, config.collect)?;
        return Ok(out);
    }

    let mut state: Option<Pipeline> = Some(first);
    let mut prefix: Vec<Choice> = Vec::new();
    let mut stack = vec![Frame {
        cands: root_enabled,
        next: 0,
        sleep: Vec::new(),
    }];

    while let Some(top) = stack.last_mut() {
        if top.next >= top.cands.len() {
            stack.pop();
            if prefix.pop().is_some() {
                state = None;
            }
            continue;
        }
        if out.schedules() >= config.max_schedules {
            out.capped = true;
            break;
        }

        let choice = top.cands[top.next];
        top.next += 1;
        let child_sleep: Vec<Choice> = if config.por {
            top.sleep
                .iter()
                .copied()
                .filter(|&t| indep.independent(t, choice))
                .collect()
        } else {
            Vec::new()
        };
        if config.por {
            top.sleep.push(choice);
        }

        let mut pipe = match state.take() {
            Some(p) => p,
            None => replay_prefix(builder, &prefix)?,
        };
        pipe.step(choice)?;
        prefix.push(choice);
        out.max_depth_seen = out.max_depth_seen.max(prefix.len());

        if prefix.len() >= config.max_depth {
            out.truncated += 1;
            prefix.pop();
            continue;
        }

        let enabled = pipe.ready()?;
        if enabled.is_empty() {
            certify(pipe, &ScheduleId(prefix.clone()), &mut out, config.collect)?;
            prefix.pop();
            continue;
        }

        let cands: Vec<Choice> = enabled
            .iter()
            .copied()
            .filter(|c| !child_sleep.contains(c))
            .collect();
        out.sleep_skips += (enabled.len() - cands.len()) as u64;
        if cands.is_empty() {
            // Every enabled choice is asleep: this node's subtrees are all
            // equivalent to already-explored schedules.
            prefix.pop();
            continue;
        }
        state = Some(pipe);
        stack.push(Frame {
            cands,
            next: 0,
            sleep: child_sleep,
        });
    }

    Ok(out)
}

fn replay_prefix(builder: &PipelineBuilder, prefix: &[Choice]) -> Result<Pipeline, PipelineError> {
    let mut pipe = builder.build()?;
    for (position, &choice) in prefix.iter().enumerate() {
        let enabled = pipe.ready()?;
        if !enabled.contains(&choice) {
            return Err(PipelineError::NotEnabled {
                position,
                choice: choice.to_string(),
            });
        }
        pipe.step(choice)?;
    }
    Ok(pipe)
}

fn certify(
    pipe: Pipeline,
    schedule: &ScheduleId,
    out: &mut ExploreOutcome,
    collect: bool,
) -> Result<(), PipelineError> {
    out.complete += 1;
    if collect {
        out.complete_schedules.push(schedule.clone());
    }
    let report = pipe.finish()?;
    let oracle = Oracle::new(&report).map_err(|e| PipelineError::Step {
        choice: "oracle".to_string(),
        detail: e.to_string(),
    })?;
    let mut violated = false;
    for (group, level, verdict) in oracle.check_report() {
        if let Verdict::Violated { detail, .. } = verdict {
            violated = true;
            out.violations.push(ScheduleViolation {
                schedule: schedule.clone(),
                group,
                level,
                detail,
            });
        }
    }
    if !violated {
        out.certified += 1;
    }
    Ok(())
}
