//! The VM → merge-process → warehouse-applier pipeline as an explicit
//! event-driven state machine with named choice points.
//!
//! This mirrors the deterministic simulator (`mvc_whips::sim`) exactly —
//! same message kinds, same per-channel FIFOs, same component semantics —
//! but exposes the scheduler as data: [`Pipeline::enabled`] lists the
//! choices open in the current state and [`Pipeline::step`] executes one.
//! Replaying the same [`Choice`] sequence from a fresh build reproduces
//! the same history bit for bit, which is what makes violating schedules
//! serializable as regression tests.
//!
//! Two deliberate simplifications against the simulator: there is no
//! random scheduler (the explorer owns all nondeterminism), and the
//! drain-phase flush nudges are *not* choice points — when no choice is
//! enabled but the system is not yet quiescent, a deterministic flush
//! round runs (every VM, then every merge process, in id order). Flush
//! timing is a liveness heuristic of the driver, not a protocol event;
//! the message deliveries a flush provokes are still explored as choices.

use crate::schedule::{ChanId, Choice, ScheduleId};
use mvc_core::{
    ActionList, CommitPolicy, ConsistencyLevel, MergeAlgorithm, MergeProcess, Partitioning, TxnSeq,
    UpdateId, ViewId,
};
use mvc_durability::{DurabilityConfig, WalRecord, WalWriter};
use mvc_relational::{Catalog, Delta, RelationName, Schema, ViewDef};
use mvc_source::{GlobalSeq, SourceCluster, SourceId, SourceUpdate};
use mvc_viewmgr::{
    answer_query, NumberedUpdate, QueryAnswer, QueryRequest, QueryToken, ViewManager, VmEvent,
    VmOutput,
};
use mvc_warehouse::{StoreTxn, Warehouse};
use mvc_whips::sim::{CommitLogEntry, SimReport, WorkloadTxn};
use mvc_whips::workload::Deployment;
use mvc_whips::{ManagerKind, SimMetrics, ViewRegistry};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Explorer-facing pipeline errors. Protocol errors (merge, view
/// manager, warehouse, source) are bugs of the *system under test* and
/// surface with the schedule prefix that triggered them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    Build(String),
    /// A component rejected an event while executing a choice.
    Step {
        choice: String,
        detail: String,
    },
    /// The requested choice is not enabled in the current state (stale or
    /// foreign [`ScheduleId`]).
    NotEnabled {
        position: usize,
        choice: String,
    },
    /// Flush rounds stopped making progress before quiescence.
    Stalled(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Build(d) => write!(f, "pipeline build failed: {d}"),
            PipelineError::Step { choice, detail } => {
                write!(f, "choice {choice} failed: {detail}")
            }
            PipelineError::NotEnabled { position, choice } => {
                write!(f, "choice {choice} at position {position} is not enabled")
            }
            PipelineError::Stalled(d) => write!(f, "pipeline stalled before quiescence: {d}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A deliberately broken, test-only warehouse-applier policy. Used to
/// prove the explorer + oracle actually find protocol violations (and
/// that a violating schedule replays deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Breakage {
    /// Buffer released transactions and commit each full buffer in
    /// reverse order — the §4.3 hazard the commit scheduler exists to
    /// prevent.
    ReorderCommits { depth: usize },
}

/// Static configuration of the explored pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub commit_policy: CommitPolicy,
    /// Force one engine for every merge group (`None` = §6.3 weakest-level
    /// selection from the managers).
    pub algorithm: Option<MergeAlgorithm>,
    /// Partition views into per-relation-set merge groups (§6.1).
    pub partition: bool,
    /// Tuple-level irrelevance tests at the integrator (paper ref \[7\]).
    pub tuple_relevance: bool,
    /// Warehouse snapshot recording (the oracle needs it only for
    /// state-matching levels; explorer runs keep it on by default so
    /// every consistency level is certifiable).
    pub record_snapshots: bool,
    /// Test-only broken applier; `None` = faithful pipeline.
    pub breakage: Option<Breakage>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            commit_policy: CommitPolicy::DependencyAware,
            algorithm: None,
            partition: false,
            tuple_relevance: true,
            record_snapshots: true,
            breakage: None,
        }
    }
}

/// Factory for [`Pipeline`] instances: holds the immutable experiment
/// description (relations, views, workload, config) and builds a fresh
/// state machine per replay — component state is not cloneable (view
/// managers are trait objects), so determinism comes from rebuilding.
#[derive(Clone)]
pub struct PipelineBuilder {
    config: PipelineConfig,
    relations: Vec<(SourceId, RelationName, Schema)>,
    registry: ViewRegistry,
    workload: Vec<WorkloadTxn>,
    /// Catalog mirror so view definitions can be built against the
    /// declared relations before any pipeline exists.
    catalog: Catalog,
}

impl PipelineBuilder {
    pub fn new(config: PipelineConfig) -> Self {
        PipelineBuilder {
            config,
            relations: Vec::new(),
            registry: ViewRegistry::new(),
            workload: Vec::new(),
            catalog: Catalog::new(),
        }
    }

    pub fn relation(
        mut self,
        source: SourceId,
        name: impl Into<RelationName>,
        schema: Schema,
    ) -> Self {
        let name = name.into();
        self.catalog
            .define(name.clone(), schema.clone())
            .expect("relation definition");
        self.relations.push((source, name, schema));
        self
    }

    pub fn view(mut self, id: ViewId, def: ViewDef, kind: ManagerKind) -> Self {
        self.registry.add(id, def, kind);
        self
    }

    pub fn workload(mut self, txns: Vec<WorkloadTxn>) -> Self {
        self.workload.extend(txns);
        self
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Build a fresh pipeline at the initial state `ss_0`.
    pub fn build(&self) -> Result<Pipeline, PipelineError> {
        let mut cluster = SourceCluster::new(64);
        for (source, name, schema) in &self.relations {
            cluster
                .create_relation(*source, name.clone(), schema.clone())
                .map_err(|e| PipelineError::Build(format!("relation {name}: {e}")))?;
        }

        let partitioning = self.registry.partitioning(self.config.partition);
        let groups = partitioning.group_count().max(1);
        let mut group_views: Vec<BTreeSet<ViewId>> = vec![BTreeSet::new(); groups];
        for id in self.registry.ids() {
            let g = partitioning.group_of_view(id).unwrap_or(0);
            group_views[g].insert(id);
        }

        let mut mps = Vec::with_capacity(groups);
        let mut guarantees = Vec::with_capacity(groups);
        for views in group_views.iter() {
            let levels: Vec<(ViewId, ConsistencyLevel)> = self
                .registry
                .levels()
                .into_iter()
                .filter(|(v, _)| views.contains(v))
                .collect();
            let mp = match self.config.algorithm {
                Some(alg) => MergeProcess::new(
                    alg,
                    levels.iter().map(|(v, _)| *v),
                    self.config.commit_policy,
                ),
                None => MergeProcess::for_managers(levels, self.config.commit_policy),
            };
            guarantees.push(mp.guarantees());
            mps.push(mp);
        }

        let mut vms: BTreeMap<ViewId, Box<dyn ViewManager>> = BTreeMap::new();
        let mut warehouse = Warehouse::new(self.config.record_snapshots);
        for e in self.registry.iter() {
            vms.insert(
                e.id,
                e.kind
                    .build(e.id, e.def.clone())
                    .map_err(|err| PipelineError::Build(format!("view {}: {err}", e.id)))?,
            );
            warehouse
                .register_view(
                    e.id,
                    e.def.name.clone(),
                    mvc_relational::Relation::shared(e.def.schema.clone()),
                )
                .map_err(|err| PipelineError::Build(format!("warehouse view {}: {err}", e.id)))?;
        }

        let integrator = mvc_whips::Integrator::new(
            self.registry.clone(),
            self.registry.partitioning(self.config.partition),
            self.config.tuple_relevance,
        );

        Ok(Pipeline {
            breakage: self.config.breakage,
            cluster,
            integrator,
            vms,
            mps,
            warehouse,
            channels: BTreeMap::new(),
            workload: self.workload.iter().cloned().collect(),
            reorder_buf: Vec::new(),
            metrics: SimMetrics::default(),
            group_updates: vec![BTreeMap::new(); groups],
            guarantees,
            group_views,
            commit_log: Vec::new(),
            routed: BTreeSet::new(),
            registry: self.registry.clone(),
            partitioning,
            flushed_all: false,
            flush_rounds: 0,
            wal: None,
            log_deliveries: BTreeSet::new(),
        })
    }

    /// Build a fresh pipeline that journals every protocol event into a
    /// write-ahead log — the same records, at the same sites, as the
    /// durable simulator — so any record prefix of the resulting log can
    /// be crash-recovered by [`mvc_whips::recover_and_run`].
    pub fn build_durable(&self, dcfg: &DurabilityConfig) -> Result<Pipeline, PipelineError> {
        let mut pipe = self.build()?;
        pipe.wal =
            Some(WalWriter::create(dcfg).map_err(|e| PipelineError::Build(format!("wal: {e}")))?);
        // Delivery-replay manager kinds journal their delivered events
        // (log-ahead), exactly like the simulator's `snapshot_logged` set.
        pipe.log_deliveries = self
            .registry
            .iter()
            .filter(|e| e.kind.needs_delivery_replay())
            .map(|e| e.id)
            .collect();
        Ok(pipe)
    }

    /// Deterministically replay a serialized schedule to its report.
    /// Every choice must be enabled where the schedule claims it is —
    /// a diverging replay means the schedule belongs to a different
    /// builder and fails with [`PipelineError::NotEnabled`].
    pub fn replay(&self, schedule: &ScheduleId) -> Result<SimReport, PipelineError> {
        Self::run_schedule(self.build()?, schedule)
    }

    /// [`PipelineBuilder::replay`] on a WAL-journaling pipeline: the
    /// report and the on-disk log of the schedule's full run.
    pub fn replay_durable(
        &self,
        schedule: &ScheduleId,
        dcfg: &DurabilityConfig,
    ) -> Result<SimReport, PipelineError> {
        Self::run_schedule(self.build_durable(dcfg)?, schedule)
    }

    fn run_schedule(mut pipe: Pipeline, schedule: &ScheduleId) -> Result<SimReport, PipelineError> {
        for (position, &choice) in schedule.0.iter().enumerate() {
            let enabled = pipe.ready()?;
            if !enabled.contains(&choice) {
                return Err(PipelineError::NotEnabled {
                    position,
                    choice: choice.to_string(),
                });
            }
            pipe.step(choice)?;
        }
        let rest = pipe.ready()?;
        if !rest.is_empty() {
            return Err(PipelineError::Stalled(format!(
                "schedule ended with {} choices still enabled",
                rest.len()
            )));
        }
        pipe.finish()
    }
}

/// The explorer's Deployment hook: the shared workload installers
/// (`install_relations`, `install_views`) work on pipeline builders too.
impl Deployment for PipelineBuilder {
    fn add_relation(self, source: SourceId, name: String, schema: Schema) -> Self {
        self.relation(source, name, schema)
    }
    fn add_view(self, id: ViewId, def: ViewDef, kind: ManagerKind) -> Self {
        self.view(id, def, kind)
    }
    fn view_catalog(&self) -> &Catalog {
        &self.catalog
    }
}

/// In-flight message payloads (the simulator's `Msg`, minus dynamic view
/// installation which the explorer does not model).
#[derive(Debug)]
enum Msg {
    SrcUpdate(std::sync::Arc<SourceUpdate>),
    AnswerFor(ViewId, QueryToken, QueryAnswer),
    Update(NumberedUpdate),
    Answer(QueryToken, QueryAnswer),
    Rel(UpdateId, BTreeSet<ViewId>),
    Action(ActionList<Delta>),
    Query(QueryToken, Box<QueryRequest>),
    Txn(StoreTxn),
    Committed(TxnSeq),
}

/// One explorable pipeline instance.
pub struct Pipeline {
    breakage: Option<Breakage>,
    cluster: SourceCluster,
    integrator: mvc_whips::Integrator,
    vms: BTreeMap<ViewId, Box<dyn ViewManager>>,
    mps: Vec<MergeProcess<Delta>>,
    warehouse: Warehouse,
    channels: BTreeMap<ChanId, VecDeque<Msg>>,
    workload: VecDeque<WorkloadTxn>,
    reorder_buf: Vec<(usize, StoreTxn)>,
    metrics: SimMetrics,
    group_updates: Vec<BTreeMap<UpdateId, GlobalSeq>>,
    guarantees: Vec<ConsistencyLevel>,
    group_views: Vec<BTreeSet<ViewId>>,
    commit_log: Vec<CommitLogEntry>,
    routed: BTreeSet<GlobalSeq>,
    registry: ViewRegistry,
    partitioning: Partitioning<RelationName>,
    /// Every component received at least one end-of-run flush (mirrors
    /// the simulator's drain contract for batching/convergent parts).
    flushed_all: bool,
    flush_rounds: usize,
    /// Write-ahead log, attached by [`PipelineBuilder::build_durable`]:
    /// the same records at the same protocol sites as the simulator, so
    /// every record prefix is a legal crash point for recovery.
    wal: Option<WalWriter>,
    /// Views whose manager kinds recover by delivery replay — their
    /// delivered events are journaled log-ahead.
    log_deliveries: BTreeSet<ViewId>,
}

/// Hard cap on drain flush rounds — matches the simulator's bound; a
/// pipeline needing more is stuck, not draining.
const MAX_FLUSH_ROUNDS: usize = 10_000;

impl Pipeline {
    /// Scheduler choices enabled in the current state, in canonical
    /// order: inject first, then nonempty channels in `ChanId` order.
    pub fn enabled(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        if !self.workload.is_empty() {
            out.push(Choice::Inject);
        }
        for (&c, q) in &self.channels {
            if !q.is_empty() {
                out.push(Choice::Deliver(c));
            }
        }
        out
    }

    /// All messages consumed, all components idle.
    pub fn quiescent(&self) -> bool {
        self.workload.is_empty()
            && self.channels.values().all(VecDeque::is_empty)
            && self.vms.values().all(|v| v.is_idle())
            && self.mps.iter().all(MergeProcess::is_quiescent)
            && self.reorder_buf.is_empty()
    }

    /// Enabled choices after applying any deterministic drain rounds.
    /// Empty result means the schedule is complete (quiescent and fully
    /// flushed) — [`Pipeline::finish`] may be called.
    pub fn ready(&mut self) -> Result<Vec<Choice>, PipelineError> {
        loop {
            let enabled = self.enabled();
            if !enabled.is_empty() {
                return Ok(enabled);
            }
            if self.quiescent() && self.flushed_all {
                return Ok(Vec::new());
            }
            self.flush_round()?;
        }
    }

    /// One deterministic drain round: flush every view manager (id
    /// order), then every merge group, then any breakage buffer. Not a
    /// choice point — see the module docs.
    fn flush_round(&mut self) -> Result<(), PipelineError> {
        self.flush_rounds += 1;
        if self.flush_rounds > MAX_FLUSH_ROUNDS {
            return Err(PipelineError::Stalled(format!(
                "{MAX_FLUSH_ROUNDS} flush rounds without quiescence"
            )));
        }
        let ids: Vec<ViewId> = self.vms.keys().copied().collect();
        for v in ids {
            if self.log_deliveries.contains(&v) {
                self.log(&WalRecord::VmFlushDelivered { view: v })?;
            }
            let outs = self
                .vms
                .get_mut(&v)
                .expect("known view")
                .handle(VmEvent::Flush)
                .map_err(|e| PipelineError::Step {
                    choice: format!("flush({v})"),
                    detail: e.to_string(),
                })?;
            self.route_vm_outputs(v, outs);
        }
        for g in 0..self.mps.len() {
            let released = self.mps[g].flush();
            self.push_released(g, released)?;
        }
        // The chaos buffer commits its (reversed) remainder at drain time,
        // exactly like the simulator's reorder fault.
        self.flush_reorder_buffer()?;
        self.flushed_all = true;
        Ok(())
    }

    /// Execute one enabled choice. Callers are expected to pick from
    /// [`Pipeline::enabled`]/[`Pipeline::ready`]; stepping a non-enabled
    /// choice fails typed.
    pub fn step(&mut self, choice: Choice) -> Result<(), PipelineError> {
        self.metrics.steps += 1;
        match choice {
            Choice::Inject => self.inject(),
            Choice::Deliver(chan) => self.deliver(chan),
        }
    }

    fn send(&mut self, chan: ChanId, msg: Msg) {
        self.channels.entry(chan).or_default().push_back(msg);
    }

    /// Log-ahead append; a no-op without an attached WAL. The explorer
    /// injects no WAL faults, so an append error is a real I/O failure.
    fn log(&mut self, rec: &WalRecord) -> Result<(), PipelineError> {
        if let Some(w) = self.wal.as_mut() {
            w.append(rec).map_err(|e| PipelineError::Step {
                choice: "wal-append".to_string(),
                detail: e.to_string(),
            })?;
        }
        Ok(())
    }

    fn inject(&mut self) -> Result<(), PipelineError> {
        let t = self.workload.pop_front().ok_or(PipelineError::NotEnabled {
            position: self.metrics.steps as usize,
            choice: "I".to_string(),
        })?;
        let update = if t.global {
            self.cluster.execute_global(t.source, t.writes)
        } else {
            self.cluster.execute(t.source, t.writes)
        }
        .map_err(|e| PipelineError::Step {
            choice: "I".to_string(),
            detail: e.to_string(),
        })?;
        self.metrics.injected += 1;
        self.send(
            ChanId::SrcToInt,
            Msg::SrcUpdate(std::sync::Arc::new(update)),
        );
        Ok(())
    }

    fn deliver(&mut self, chan: ChanId) -> Result<(), PipelineError> {
        let msg = self
            .channels
            .get_mut(&chan)
            .and_then(VecDeque::pop_front)
            .ok_or(PipelineError::NotEnabled {
                position: self.metrics.steps as usize,
                choice: Choice::Deliver(chan).to_string(),
            })?;
        self.metrics.messages_delivered += 1;
        let step_err = |detail: String| PipelineError::Step {
            choice: Choice::Deliver(chan).to_string(),
            detail,
        };
        match (chan, msg) {
            (ChanId::SrcToInt, Msg::SrcUpdate(u)) => {
                if self.wal.is_some() {
                    self.log(&WalRecord::SourceUpdate(std::sync::Arc::clone(&u)))?;
                }
                let routings = self.integrator.route(u);
                for r in routings {
                    self.routed.insert(r.numbered.seq());
                    self.group_updates[r.group].insert(r.numbered.id, r.numbered.seq());
                    self.send(
                        ChanId::IntToMp(r.group),
                        Msg::Rel(r.numbered.id, r.rel.clone()),
                    );
                    for v in r.rel {
                        // seal: fan-out shares the routed payload's Arc
                        // handle, never the tuple data
                        self.send(ChanId::IntToVm(v), Msg::Update(r.numbered.clone()));
                    }
                }
            }
            (ChanId::SrcToInt, Msg::AnswerFor(v, token, answer)) => {
                // Same FIFO as the view's updates: answers cannot overtake
                // the updates they reflect.
                self.send(ChanId::IntToVm(v), Msg::Answer(token, answer));
            }
            (ChanId::IntToVm(v), msg @ (Msg::Update(_) | Msg::Answer(..))) => {
                let event = match msg {
                    Msg::Update(u) => {
                        if self.log_deliveries.contains(&v) {
                            self.log(&WalRecord::VmUpdateDelivered { view: v, id: u.id })?;
                        }
                        VmEvent::Update(u)
                    }
                    Msg::Answer(token, answer) => {
                        // By value: re-asking the sources post-crash would
                        // observe a different state than the manager
                        // compensated for.
                        if self.log_deliveries.contains(&v) {
                            self.log(&WalRecord::VmAnswerDelivered {
                                view: v,
                                token,
                                answer: answer.clone(),
                            })?;
                        }
                        VmEvent::Answer { token, answer }
                    }
                    _ => unreachable!("guarded by the outer pattern"),
                };
                let outs = self
                    .vms
                    .get_mut(&v)
                    .expect("known view")
                    .handle(event)
                    .map_err(|e| step_err(e.to_string()))?;
                self.route_vm_outputs(v, outs);
            }
            (ChanId::VmToQs(v), Msg::Query(token, request)) => {
                let answer =
                    answer_query(&self.cluster, &request).map_err(|e| step_err(e.to_string()))?;
                self.send(ChanId::SrcToInt, Msg::AnswerFor(v, token, answer));
            }
            (ChanId::IntToMp(g), Msg::Rel(id, rel)) => {
                if self.wal.is_some() {
                    self.log(&WalRecord::RelInstalled {
                        group: g as u64,
                        id,
                        rel: rel.clone(),
                    })?;
                }
                let released = self.mps[g]
                    .on_rel(id, rel)
                    .map_err(|e| step_err(e.to_string()))?;
                self.push_released(g, released)?;
            }
            (ChanId::VmToMp(v), Msg::Action(al)) => {
                let g = self.partitioning.group_of_view(v).unwrap_or(0);
                if self.wal.is_some() {
                    self.log(&WalRecord::ActionInstalled {
                        group: g as u64,
                        al: al.clone(),
                    })?;
                }
                let released = self.mps[g]
                    .on_action(al)
                    .map_err(|e| step_err(e.to_string()))?;
                self.push_released(g, released)?;
            }
            (ChanId::MpToWh(g), Msg::Txn(txn)) => {
                self.commit_or_buffer(g, txn)?;
            }
            (ChanId::WhToMp(g), Msg::Committed(seq)) => {
                self.log(&WalRecord::CommitAcked {
                    group: g as u64,
                    seq,
                })?;
                let released = self.mps[g].on_committed(seq);
                self.push_released(g, released)?;
            }
            (c, m) => {
                return Err(step_err(format!("message {m:?} on channel {c:?}")));
            }
        }
        Ok(())
    }

    fn route_vm_outputs(&mut self, v: ViewId, outs: Vec<VmOutput>) {
        for o in outs {
            match o {
                VmOutput::Action(al) => self.send(ChanId::VmToMp(v), Msg::Action(al)),
                VmOutput::Query { token, request } => {
                    self.send(ChanId::VmToQs(v), Msg::Query(token, Box::new(request)));
                }
            }
        }
    }

    fn push_released(&mut self, g: usize, released: Vec<StoreTxn>) -> Result<(), PipelineError> {
        for t in released {
            if self.wal.is_some() {
                // Full payload: a txn released before a crash point but
                // committed after it cannot be regenerated by tail replay.
                self.log(&WalRecord::GroupReleased {
                    group: g as u64,
                    txn: t.clone(),
                })?;
            }
            self.send(ChanId::MpToWh(g), Msg::Txn(t));
        }
        Ok(())
    }

    fn commit_or_buffer(&mut self, g: usize, txn: StoreTxn) -> Result<(), PipelineError> {
        match self.breakage {
            Some(Breakage::ReorderCommits { depth }) => {
                self.reorder_buf.push((g, txn));
                if self.reorder_buf.len() >= depth.max(1) {
                    self.flush_reorder_buffer()?;
                }
                Ok(())
            }
            None => self.commit(g, txn),
        }
    }

    fn flush_reorder_buffer(&mut self) -> Result<(), PipelineError> {
        let buf: Vec<(usize, StoreTxn)> = self.reorder_buf.drain(..).rev().collect();
        for (g, txn) in buf {
            self.commit(g, txn)?;
        }
        Ok(())
    }

    fn commit(&mut self, g: usize, txn: StoreTxn) -> Result<(), PipelineError> {
        let seq = txn.seq;
        self.log(&WalRecord::TxnCommitted {
            group: g as u64,
            seq,
        })?;
        self.warehouse
            .apply(&txn)
            .map_err(|e| PipelineError::Step {
                choice: format!("commit({g},{seq})"),
                detail: e.to_string(),
            })?;
        self.commit_log.push(CommitLogEntry {
            group: g,
            seq,
            rows: txn.rows.clone(),
            views: txn.views.clone(),
        });
        self.metrics.commits += 1;
        self.send(ChanId::WhToMp(g), Msg::Committed(seq));
        Ok(())
    }

    /// Consume the quiescent pipeline into an oracle-checkable report.
    pub fn finish(mut self) -> Result<SimReport, PipelineError> {
        if !self.quiescent() {
            return Err(PipelineError::Stalled(
                "finish() before quiescence".to_string(),
            ));
        }
        if let Some(mut w) = self.wal.take() {
            w.finalize().map_err(|e| PipelineError::Step {
                choice: "wal-finalize".to_string(),
                detail: e.to_string(),
            })?;
        }
        let merge_stats = self.mps.iter().map(MergeProcess::stats).collect();
        let commit_stats = self.mps.iter().map(MergeProcess::commit_stats).collect();
        Ok(SimReport {
            cluster: self.cluster,
            warehouse: self.warehouse,
            registry: self.registry,
            partitioning: self.partitioning,
            group_updates: self.group_updates,
            metrics: self.metrics,
            merge_stats,
            commit_stats,
            guarantees: self.guarantees,
            group_views: self.group_views,
            commit_log: self.commit_log,
            pipeline: mvc_whips::PipelineObs::new("steps"),
            routed: self.routed,
            activations: BTreeMap::new(),
            // The explorer's pipeline state machine has no reader
            // workload; nothing to certify on the read side. It is also
            // never sharded.
            read_observations: Vec::new(),
            initial_fingerprints: BTreeMap::new(),
            shard_plane: None,
        })
    }

    /// Number of merge groups (needed by the independence relation).
    pub fn groups(&self) -> usize {
        self.mps.len()
    }

    /// Group owning a view — delegates to the §6.1 partitioning.
    pub fn group_of_view(&self, v: ViewId) -> usize {
        self.partitioning.group_of_view(v).unwrap_or(0)
    }
}
