//! Named choice points and replayable schedule identities.
//!
//! A schedule is the exact sequence of scheduler choices the explorer (or
//! a replay) makes: inject the next workload transaction, or deliver the
//! head message of one named channel. Serializing the sequence as a
//! [`ScheduleId`] turns any explored interleaving — in particular a
//! violating one — into a deterministic regression test: same id, same
//! history, same oracle verdict.

use mvc_core::ViewId;
use std::fmt;
use std::str::FromStr;

/// A named channel of the modelled pipeline (the arrows of Figure 1).
/// The `Ord` order is the canonical exploration order at every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChanId {
    /// Sources → integrator (updates, forwarded query answers).
    SrcToInt,
    /// Integrator → one view manager (updates, answers, flush nudges).
    IntToVm(ViewId),
    /// Integrator → one merge group (`REL_i` relevance sets).
    IntToMp(usize),
    /// One view manager → its merge group (action lists).
    VmToMp(ViewId),
    /// One view manager → the query service (source queries).
    VmToQs(ViewId),
    /// One merge group → the warehouse applier (released `WT`s).
    MpToWh(usize),
    /// Warehouse applier → one merge group (commit acknowledgements).
    WhToMp(usize),
}

/// One scheduler choice: the explorer's unit of interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Choice {
    /// Execute the next workload transaction at the sources.
    Inject,
    /// Deliver the head message of the named channel.
    Deliver(ChanId),
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::Inject => write!(f, "I"),
            Choice::Deliver(ChanId::SrcToInt) => write!(f, "S"),
            Choice::Deliver(ChanId::IntToVm(v)) => write!(f, "v{}", v.0),
            Choice::Deliver(ChanId::IntToMp(g)) => write!(f, "m{g}"),
            Choice::Deliver(ChanId::VmToMp(v)) => write!(f, "a{}", v.0),
            Choice::Deliver(ChanId::VmToQs(v)) => write!(f, "q{}", v.0),
            Choice::Deliver(ChanId::MpToWh(g)) => write!(f, "W{g}"),
            Choice::Deliver(ChanId::WhToMp(g)) => write!(f, "C{g}"),
        }
    }
}

/// A serialized schedule: `.`-joined choice tokens, e.g.
/// `I.I.S.v1.a1.m0.W0.C0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ScheduleId(pub Vec<Choice>);

impl ScheduleId {
    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for ScheduleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Typed parse failure for a serialized schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// Zero-based token index of the offending token.
    pub position: usize,
    pub token: String,
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unrecognized schedule token {:?} at position {}",
            self.token, self.position
        )
    }
}

impl std::error::Error for ScheduleParseError {}

impl FromStr for ScheduleId {
    type Err = ScheduleParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Ok(ScheduleId(Vec::new()));
        }
        let mut choices = Vec::new();
        for (position, token) in s.split('.').enumerate() {
            let err = || ScheduleParseError {
                position,
                token: token.to_string(),
            };
            let choice = match token {
                "I" => Choice::Inject,
                "S" => Choice::Deliver(ChanId::SrcToInt),
                _ => {
                    if token.len() < 2 || !token.is_ascii() {
                        return Err(err());
                    }
                    let (kind, num) = token.split_at(1);
                    let n: u32 = num.parse().map_err(|_| err())?;
                    match kind {
                        "v" => Choice::Deliver(ChanId::IntToVm(ViewId(n))),
                        "m" => Choice::Deliver(ChanId::IntToMp(n as usize)),
                        "a" => Choice::Deliver(ChanId::VmToMp(ViewId(n))),
                        "q" => Choice::Deliver(ChanId::VmToQs(ViewId(n))),
                        "W" => Choice::Deliver(ChanId::MpToWh(n as usize)),
                        "C" => Choice::Deliver(ChanId::WhToMp(n as usize)),
                        _ => return Err(err()),
                    }
                }
            };
            choices.push(choice);
        }
        Ok(ScheduleId(choices))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_tokens() {
        let id = ScheduleId(vec![
            Choice::Inject,
            Choice::Deliver(ChanId::SrcToInt),
            Choice::Deliver(ChanId::IntToVm(ViewId(2))),
            Choice::Deliver(ChanId::IntToMp(0)),
            Choice::Deliver(ChanId::VmToMp(ViewId(2))),
            Choice::Deliver(ChanId::VmToQs(ViewId(13))),
            Choice::Deliver(ChanId::MpToWh(1)),
            Choice::Deliver(ChanId::WhToMp(1)),
        ]);
        let text = id.to_string();
        assert_eq!(text, "I.S.v2.m0.a2.q13.W1.C1");
        assert_eq!(text.parse::<ScheduleId>().unwrap(), id);
        assert_eq!("".parse::<ScheduleId>().unwrap(), ScheduleId(Vec::new()));
    }

    #[test]
    fn parse_errors_are_positional() {
        let err = "I.S.x7".parse::<ScheduleId>().unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.token, "x7");
        assert!("v".parse::<ScheduleId>().is_err());
        assert!("vxy".parse::<ScheduleId>().is_err());
    }
}
