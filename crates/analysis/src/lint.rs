//! Repo-specific protocol lint: a hand-rolled token-level scanner for
//! the concurrency-hygiene rules the threaded runtime and durability
//! subsystem rely on. No rustc plumbing, no syn — a small line model
//! with string literals and comments stripped is enough for every rule,
//! and keeps the lint dependency-free and fast.
//!
//! Rules:
//!
//! 1. **recv-join-unwrap** (threaded runtime only): channel `recv()` and
//!    thread `join()` results must not be `unwrap`ped or discarded with
//!    `let _ =` — a panicking worker must surface as a typed error, not
//!    tear down or silently leak the runtime.
//! 2. **atomic-ordering-comment**: every atomic `Ordering::…` use must
//!    carry a justification comment on the same line or within the two
//!    preceding lines. (`std::cmp::Ordering`'s variants are
//!    `Less`/`Equal`/`Greater` — different names, never matched.)
//! 3. **direct-paint-write**: VUT paint transitions go through the typed
//!    API in `core/src/vut.rs`; assigning `.color =` or `.state =`
//!    anywhere else bypasses the state machine's invariants.
//! 4. **wal-variant-roundtrip**: every `WalRecord` variant must appear in
//!    the durability crate's test code — a codec change without a
//!    roundtrip test is how recovery silently rots.
//! 5. **update-payload-clone** (pipeline files in `whips/src/` and
//!    `analysis/src/`, except `integrator.rs`): `.clone()` on an
//!    update-payload binding (`numbered`, `update`, `u`) must carry a
//!    `seal:` justification comment on the same line or within the six
//!    preceding lines (wrapped method chains push the call away from its
//!    comment). Update payloads are `Arc`-shared end-to-end;
//!    a handle clone at a fan-out point is fine (and cheap), but each
//!    such site must say so — an unexplained clone is where a deep copy
//!    of tuple data sneaks back into the hot path. The integrator is
//!    exempt: it owns numbering and legitimately clones handles while
//!    routing.
//! 6. **raw-lock-unaudited** (lock-audited pipeline files: the threaded
//!    runtime, `readpath/src/`, `warehouse/src/`): every `Mutex::new(`
//!    / `RwLock::new(` must go through the audited wrappers
//!    (`AuditedMutex`/`AuditedRwLock` from `mvc_core::lock`) so the
//!    lockdep graph sees it; a raw `parking_lot` lock is invisible to
//!    deadlock detection and to the `analysis/locks.toml` manifest. A
//!    `seal:` justification comment within the three preceding lines
//!    exempts a site (e.g. a lock deliberately outside the audit).
//!
//! Because rule matching runs on comment- and string-stripped code, the
//! deliberately-bad fixtures embedded in this file's own unit tests (as
//! string literals) never flag the lint itself.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    RecvJoinUnwrap,
    AtomicOrderingComment,
    DirectPaintWrite,
    WalVariantRoundtrip,
    UpdatePayloadClone,
    RawLockUnaudited,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::RecvJoinUnwrap => "recv-join-unwrap",
            Rule::AtomicOrderingComment => "atomic-ordering-comment",
            Rule::DirectPaintWrite => "direct-paint-write",
            Rule::WalVariantRoundtrip => "wal-variant-roundtrip",
            Rule::UpdatePayloadClone => "update-payload-clone",
            Rule::RawLockUnaudited => "raw-lock-unaudited",
        };
        f.write_str(s)
    }
}

/// One lint hit, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct LintFinding {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One source line after stripping: executable code with string/char
/// literal *contents* blanked, plus whether any comment touched the line.
#[derive(Debug, Clone)]
pub(crate) struct CodeLine {
    pub(crate) code: String,
    pub(crate) has_comment: bool,
}

/// The stripped line model, shared with the lock-manifest lint.
pub(crate) fn strip_source(source: &str) -> Vec<CodeLine> {
    strip(source)
}

/// Strip comments and literal contents, preserving line structure.
/// Handles line/nested block comments, cooked and raw strings (any hash
/// count), byte strings, char literals, and lifetimes.
fn strip(source: &str) -> Vec<CodeLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut has_comment = false;
    let mut i = 0;
    let n = chars.len();
    let flush = |code: &mut String, has_comment: &mut bool, lines: &mut Vec<CodeLine>| {
        lines.push(CodeLine {
            code: std::mem::take(code),
            has_comment: *has_comment,
        });
        *has_comment = false;
    };
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                flush(&mut code, &mut has_comment, &mut lines);
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                has_comment = true;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                has_comment = true;
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if chars[i] == '\n' {
                        flush(&mut code, &mut has_comment, &mut lines);
                        has_comment = true;
                        i += 1;
                    } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            'r' | 'b' if is_raw_or_byte_string(&chars, i) => {
                // Skip prefix letters and count hashes.
                let mut j = i;
                let mut saw_r = false;
                while j < n && (chars[j] == 'r' || chars[j] == 'b') {
                    saw_r |= chars[j] == 'r';
                    j += 1;
                }
                let mut hashes = 0;
                while j < n && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                let raw = saw_r || hashes > 0;
                // j is at the opening quote.
                j += 1;
                code.push('"');
                loop {
                    if j >= n {
                        break;
                    }
                    let d = chars[j];
                    if d == '\n' {
                        flush(&mut code, &mut has_comment, &mut lines);
                        j += 1;
                        continue;
                    }
                    if !raw && d == '\\' {
                        j += 2;
                        continue;
                    }
                    if d == '"' {
                        let mut k = 0;
                        while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break;
                        }
                    }
                    j += 1;
                }
                code.push('"');
                i = j;
            }
            '"' => {
                code.push('"');
                i += 1;
                while i < n {
                    let d = chars[i];
                    if d == '\\' {
                        i += 2;
                    } else if d == '\n' {
                        flush(&mut code, &mut has_comment, &mut lines);
                        i += 1;
                    } else if d == '"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                code.push('"');
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let is_lifetime = i + 1 < n
                    && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                    && !(i + 2 < n && chars[i + 2] == '\'');
                if is_lifetime {
                    code.push('\'');
                    i += 1;
                } else {
                    code.push('\'');
                    i += 1;
                    if i < n && chars[i] == '\\' {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < n && chars[i] != '\'' && chars[i] != '\n' {
                        i += 1;
                    }
                    if i < n && chars[i] == '\'' {
                        i += 1;
                    }
                    code.push('\'');
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }
    if !code.is_empty() || has_comment {
        lines.push(CodeLine { code, has_comment });
    }
    lines
}

/// Is `chars[i..]` the start of a raw/byte string prefix (`r"`, `r#`,
/// `b"`, `br"`, `br#`…) and not a plain identifier?
fn is_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    // Must not be the tail of an identifier (e.g. `attr"`, `for r in`).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    let n = chars.len();
    let mut prefix = String::new();
    while j < n && (chars[j] == 'r' || chars[j] == 'b') && prefix.len() < 2 {
        prefix.push(chars[j]);
        j += 1;
    }
    if prefix.is_empty() || prefix == "bb" {
        return false;
    }
    while j < n && chars[j] == '#' {
        if !prefix.contains('r') {
            return false;
        }
        j += 1;
    }
    j < n && chars[j] == '"'
}

/// The atomic orderings (never `cmp::Ordering`'s variants).
const ATOMIC_ORDERINGS: [&str; 5] = [
    "Ordering::SeqCst",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::Relaxed",
];

/// Lint one file's source. `path` is the repo-relative path (used for
/// per-file rule scoping); rule 4 is cross-file and lives in
/// [`lint_tree`].
pub fn lint_file(path: &str, source: &str) -> Vec<LintFinding> {
    let lines = strip(source);
    let mut findings = Vec::new();
    let finding = |line: usize, rule: Rule, message: String| LintFinding {
        file: path.to_string(),
        line: line + 1,
        rule,
        message,
    };

    let in_threaded = Path::new(path)
        .file_name()
        .is_some_and(|f| f == "threaded.rs");
    let in_vut = path.ends_with("core/src/vut.rs") || path == "vut.rs";
    // Rule 5 scope: the runtimes that actually route update payloads.
    // The integrator owns numbering and clones handles as part of its
    // contract, so it is exempt by file.
    let in_pipeline = (path.contains("whips/src/") || path.contains("analysis/src/"))
        && Path::new(path)
            .file_name()
            .is_none_or(|f| f != "integrator.rs");
    // Rule 6 scope: the crates whose locks are wired into the lockdep
    // audit (threaded runtime, read path, shared warehouse).
    let in_lock_scope =
        in_threaded || path.contains("readpath/src/") || path.contains("warehouse/src/");
    // Raw (unstripped) lines, for the `seal:` justification lookback —
    // the marker lives inside comments, which `strip` blanks out.
    let raw: Vec<&str> = source.lines().collect();

    for (idx, l) in lines.iter().enumerate() {
        let code = l.code.as_str();

        // Rule 1: unwrap/discard on recv() / join() in the threaded runtime.
        if in_threaded {
            let touches = code.contains(".recv()") || code.contains(".join()");
            let next_code = lines.get(idx + 1).map(|l| l.code.as_str()).unwrap_or("");
            let unwraps = |s: &str| s.contains(".unwrap(") || s.contains(".unwrap_or");
            if touches && (unwraps(code) || unwraps(next_code)) {
                findings.push(finding(
                    idx,
                    Rule::RecvJoinUnwrap,
                    "channel recv / thread join result unwrapped; surface the failure as a typed error".into(),
                ));
            }
            if code.trim_start().starts_with("let _ =") && touches {
                findings.push(finding(
                    idx,
                    Rule::RecvJoinUnwrap,
                    "channel recv / thread join result discarded with `let _ =`".into(),
                ));
            }
        }

        // Rule 2: atomic Ordering uses need a justification comment.
        if ATOMIC_ORDERINGS.iter().any(|o| code.contains(o)) {
            let justified = l.has_comment
                || (idx >= 1 && lines[idx - 1].has_comment)
                || (idx >= 2 && lines[idx - 2].has_comment);
            if !justified {
                findings.push(finding(
                    idx,
                    Rule::AtomicOrderingComment,
                    "atomic memory ordering without a justification comment on this or the two preceding lines".into(),
                ));
            }
        }

        // Rule 5: update-payload `.clone()` without a `seal:` comment.
        if in_pipeline {
            for ident in payload_clone_receivers(code) {
                let lo = idx.saturating_sub(6);
                let justified = raw[lo..=idx.min(raw.len().saturating_sub(1))]
                    .iter()
                    .any(|l| l.contains("seal:"));
                if !justified {
                    findings.push(finding(
                        idx,
                        Rule::UpdatePayloadClone,
                        format!(
                            "`{ident}.clone()` on an update payload without a `seal:` \
                             justification comment within the six preceding lines"
                        ),
                    ));
                }
            }
        }

        // Rule 6: raw lock constructions in lock-audited crates. The
        // preceding-character check keeps `AuditedMutex::new(` (which
        // contains `Mutex::new(` as a substring) from matching itself.
        if in_lock_scope {
            for pat in ["Mutex::new(", "RwLock::new("] {
                let mut rest = code;
                let mut off = 0;
                while let Some(p) = rest.find(pat) {
                    let before = &code[..off + p];
                    let wrapped = before
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                    if !wrapped {
                        let lo = idx.saturating_sub(3);
                        let sealed = raw[lo..=idx.min(raw.len().saturating_sub(1))]
                            .iter()
                            .any(|l| l.contains("seal:"));
                        if !sealed {
                            findings.push(finding(
                                idx,
                                Rule::RawLockUnaudited,
                                format!(
                                    "raw `{}...)` is invisible to the lockdep audit; use the \
                                     audited wrapper from `mvc_core::lock` or add a `seal:` \
                                     justification within the three preceding lines",
                                    pat
                                ),
                            ));
                        }
                    }
                    off += p + pat.len();
                    rest = &code[off..];
                }
            }
        }

        // Rule 3: direct paint-state writes outside the VUT.
        if !in_vut {
            for pat in [".color =", ".state ="] {
                if let Some(p) = code.find(pat) {
                    let after = code[p + pat.len()..].trim_start();
                    if !after.starts_with('=') {
                        findings.push(finding(
                            idx,
                            Rule::DirectPaintWrite,
                            format!(
                                "direct `{}` write bypasses the Vut typed paint API",
                                pat.trim()
                            ),
                        ));
                    }
                }
            }
        }
    }
    findings
}

/// Receivers a `.clone()` is suspicious on: the update-payload bindings
/// used throughout the routing code. Matching is by the identifier
/// immediately before `.clone()` (so `r.numbered.clone()` matches via
/// `numbered`, while `menu.clone()` does not match via `u`).
const PAYLOAD_IDENTS: [&str; 3] = ["numbered", "update", "u"];

/// All payload identifiers that receive a `.clone()` on this stripped
/// code line.
fn payload_clone_receivers(code: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(p) = rest.find(".clone()") {
        let before = &rest[..p];
        let ident_start = before
            .rfind(|c: char| !c.is_alphanumeric() && c != '_')
            .map_or(0, |q| q + 1);
        let ident = &before[ident_start..];
        if let Some(hit) = PAYLOAD_IDENTS.iter().find(|i| **i == ident) {
            out.push(*hit);
        }
        rest = &rest[p + ".clone()".len()..];
    }
    out
}

/// Extract the variant names of `pub enum WalRecord` from record.rs
/// source (comment-stripped, brace-tracked).
fn wal_variants(source: &str) -> Vec<(usize, String)> {
    let lines = strip(source);
    let mut out = Vec::new();
    let mut depth: i32 = -1;
    for (idx, l) in lines.iter().enumerate() {
        let code = l.code.as_str();
        if depth < 0 {
            if code.contains("enum WalRecord") {
                depth = 0;
                if code.contains('{') {
                    depth = 1;
                }
            }
            continue;
        }
        if depth == 0 && code.contains('{') {
            depth = 1;
            continue;
        }
        let trimmed = code.trim();
        if depth == 1 {
            let name: String = trimmed
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name
                .chars()
                .next()
                .map(|c| c.is_ascii_uppercase())
                .unwrap_or(false)
            {
                out.push((idx + 1, name));
            }
        }
        for c in trimmed.chars() {
            match c {
                '{' | '(' => depth += 1,
                '}' | ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Concatenated `#[cfg(test)]`-and-after code of one file.
fn test_region(source: &str) -> String {
    match source.find("#[cfg(test)]") {
        Some(p) => source[p..].to_string(),
        None => String::new(),
    }
}

/// Walk `root` (skipping `target/`, `vendor/`, `.git/`) and lint every
/// `.rs` file, including the cross-file WAL-roundtrip rule.
pub fn lint_tree(root: &Path) -> io::Result<Vec<LintFinding>> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    let mut record_rs: Option<(String, String)> = None;
    let mut durability_tests = String::new();

    for f in &files {
        let source = fs::read_to_string(f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_file(&rel, &source));
        if rel.contains("durability") {
            durability_tests.push_str(&test_region(&source));
            if rel.ends_with("record.rs") {
                record_rs = Some((rel.clone(), source.clone()));
            }
        }
    }

    if let Some((rel, source)) = record_rs {
        for (line, variant) in wal_variants(&source) {
            if !durability_tests.contains(&variant) {
                findings.push(LintFinding {
                    file: rel.clone(),
                    line,
                    rule: Rule::WalVariantRoundtrip,
                    message: format!(
                        "WalRecord::{variant} has no codec roundtrip coverage in durability tests"
                    ),
                });
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == ".git" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_literal_contents() {
        let src = "let x = \"Ordering::SeqCst\"; // Ordering::SeqCst\nlet y = 1; /* multi\nline */ let z = 2;\n";
        let lines = strip(src);
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].code.contains("SeqCst"));
        assert!(lines[0].has_comment);
        assert!(lines[1].has_comment);
        assert!(lines[2].code.contains("let z = 2;"));
        assert!(lines[2].has_comment);
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "let r = r#\"let _ = rx.recv()\"#;\nfn f<'a>(x: &'a str) -> char { 'x' }\n";
        let lines = strip(src);
        assert!(!lines[0].code.contains("recv"));
        assert!(lines[1].code.contains("fn f<'a>"));
    }

    #[test]
    fn rule_recv_join_unwrap_fires() {
        let bad = "let v = rx.recv().unwrap();\nlet _ = handle.join();\nlet w = rx\n    .recv()\n    .unwrap_or_default();\n";
        let hits = lint_file("crates/whips/src/threaded.rs", bad);
        let recv_hits: Vec<_> = hits
            .iter()
            .filter(|f| f.rule == Rule::RecvJoinUnwrap)
            .collect();
        assert_eq!(recv_hits.len(), 3, "{hits:?}");
        // The same source outside the threaded runtime is fine.
        assert!(lint_file("crates/whips/src/sim.rs", bad)
            .iter()
            .all(|f| f.rule != Rule::RecvJoinUnwrap));
    }

    #[test]
    fn rule_atomic_ordering_comment_fires_and_clears() {
        let bad = "x.store(1, Ordering::SeqCst);\n";
        let hits = lint_file("crates/whips/src/threaded.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::AtomicOrderingComment);
        assert_eq!(hits[0].line, 1);

        let ok_same = "x.store(1, Ordering::SeqCst); // release-the-kraken justification\n";
        assert!(lint_file("a.rs", ok_same).is_empty());
        let ok_above = "// counter is a plain statistic\n\nx.store(1, Ordering::Relaxed);\n";
        assert!(lint_file("a.rs", ok_above).is_empty());
        let too_far = "// too far away\n\n\nx.store(1, Ordering::Relaxed);\n";
        assert_eq!(lint_file("a.rs", too_far).len(), 1);
        // cmp::Ordering variants never match.
        assert!(lint_file("a.rs", "let o = Ordering::Less;\n").is_empty());
    }

    #[test]
    fn rule_direct_paint_write_fires_outside_vut() {
        let bad = "entry.color = Color::Black;\nrow.state = JumpState::Waiting;\nif e.color == Color::Red {}\n";
        let hits = lint_file("crates/core/src/merge.rs", bad);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits.iter().all(|f| f.rule == Rule::DirectPaintWrite));
        assert!(lint_file("crates/core/src/vut.rs", bad).is_empty());
    }

    #[test]
    fn rule_update_payload_clone_fires_and_clears() {
        let bad =
            "send(Msg::Update(r.numbered.clone()));\nroute(u.clone());\nlet m = menu.clone();\n";
        let hits = lint_file("crates/whips/src/sim.rs", bad);
        let clone_hits: Vec<_> = hits
            .iter()
            .filter(|f| f.rule == Rule::UpdatePayloadClone)
            .collect();
        // `menu.clone()` must not match via the trailing `u`.
        assert_eq!(clone_hits.len(), 2, "{hits:?}");
        assert_eq!(clone_hits[0].line, 1);
        assert_eq!(clone_hits[1].line, 2);

        // A `seal:` comment within the six preceding lines justifies.
        let ok = "// seal: fan-out shares the Arc handle,\n// never the tuple data\nlet x = 1;\nlet y = 2;\nsend(Msg::Update(r.numbered.clone()));\n";
        assert!(lint_file("crates/whips/src/sim.rs", ok)
            .iter()
            .all(|f| f.rule != Rule::UpdatePayloadClone));
        // ...but not from seven lines away.
        let too_far = "// seal: too far\nlet a = 1;\nlet b = 2;\nlet c = 3;\nlet d = 4;\nlet e = 5;\nlet f = 6;\nroute(u.clone());\n";
        assert_eq!(
            lint_file("crates/whips/src/sim.rs", too_far)
                .iter()
                .filter(|f| f.rule == Rule::UpdatePayloadClone)
                .count(),
            1
        );

        // The integrator and non-pipeline crates are out of scope.
        assert!(lint_file("crates/whips/src/integrator.rs", bad).is_empty());
        assert!(lint_file("crates/viewmgr/src/strobe.rs", bad).is_empty());
    }

    #[test]
    fn rule_raw_lock_unaudited_fires_and_clears() {
        let bad = "let m = Mutex::new(0);\nlet w = parking_lot::RwLock::new(v);\n";
        let hits = lint_file("crates/whips/src/threaded.rs", bad);
        let lock_hits: Vec<_> = hits
            .iter()
            .filter(|f| f.rule == Rule::RawLockUnaudited)
            .collect();
        assert_eq!(lock_hits.len(), 2, "{hits:?}");
        assert!(lock_hits[0].message.contains("lockdep"));

        // The audited wrappers never match themselves.
        let ok = "let m = AuditedMutex::new(\"whips.x\", 0);\nlet w = AuditedRwLock::new(\"whips.y\", v);\n";
        assert!(lint_file("crates/readpath/src/lib.rs", ok)
            .iter()
            .all(|f| f.rule != Rule::RawLockUnaudited));

        // A seal: justification within three lines exempts a site.
        let sealed =
            "// seal: fixture lock, deliberately outside the audit\nlet m = Mutex::new(0);\n";
        assert!(lint_file("crates/warehouse/src/shared.rs", sealed)
            .iter()
            .all(|f| f.rule != Rule::RawLockUnaudited));

        // Out-of-scope crates may construct raw locks freely.
        assert!(lint_file("crates/core/src/lock.rs", bad)
            .iter()
            .all(|f| f.rule != Rule::RawLockUnaudited));
    }

    #[test]
    fn wal_variant_extraction() {
        let src = "pub enum WalRecord {\n    SourceUpdate(SourceUpdate),\n    RelInstalled { group: usize },\n    Checkpoint(Box<CheckpointState>),\n}\n";
        let names: Vec<String> = wal_variants(src).into_iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["SourceUpdate", "RelInstalled", "Checkpoint"]);
    }
}
