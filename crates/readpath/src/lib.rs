//! # mvc-readpath
//!
//! The read path of the MVC reproduction: an MVCC layer over the
//! warehouse that retains multi-view cuts keyed by commit watermark, so
//! readers get snapshot-isolation multi-view reads (§1.1's customer
//! inquiry) without holding the warehouse lock while the merge pipeline
//! commits.
//!
//! Pieces:
//!
//! * [`VersionedCuts`] — the version store. Every committed warehouse
//!   transaction publishes `Arc`-shared handles of the views it changed
//!   under the commit's watermark (= `CommittedTxn::commit_index`, so
//!   watermark 0 is the initial pre-commit state). Per view the store
//!   keeps a version *chain*; a read at watermark `w` resolves each view
//!   to its newest version at or below `w` — a mutually consistent cut by
//!   construction, because the publisher publishes whole commits in
//!   commit order.
//! * [`ReadSession`] — a reader handle with *read-your-watermark*
//!   monotonicity: a session never observes a cut older than one it has
//!   already seen ([`ReadSession::read_at`] clamps the requested
//!   watermark up to the session's last seen cut). Each live session pins
//!   the store's GC floor at its last-seen watermark, so the slowest
//!   active session bounds retention and memory stays proportional to
//!   `head − floor`.
//! * [`verify_observations`] — the read-side half of the consistency
//!   oracle: every observed cut must fingerprint-match the committed
//!   state vector at its watermark (one of the mutually consistent states
//!   the write-side oracle certifies), and per-session watermarks must be
//!   monotone.
//!
//! All handles are `Arc`-shared: publishing a commit clones view handles,
//! never tuple data, and a read clones one `Arc` per requested view.

#![forbid(unsafe_code)]

use mvc_core::hb::VectorClock;
use mvc_core::lock::AuditedMutex;
use mvc_core::ViewId;
use mvc_relational::Relation;
use mvc_warehouse::CommittedTxn;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Commit watermark: `CommittedTxn::commit_index` of the newest commit a
/// cut reflects; 0 = the initial (pre-any-commit) state.
pub type Watermark = u64;

/// Identifies one [`ReadSession`] within its store.
pub type SessionId = u64;

/// Read-path errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadError {
    /// The requested watermark is ahead of everything published.
    Unpublished {
        requested: Watermark,
        head: Watermark,
    },
    /// A requested view has no version chain (never seeded or published).
    UnknownView(ViewId),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Unpublished { requested, head } => {
                write!(f, "watermark {requested} not yet published (head {head})")
            }
            ReadError::UnknownView(v) => write!(f, "view {v} has no version chain"),
        }
    }
}

impl std::error::Error for ReadError {}

/// A mutually consistent multi-view cut at one watermark.
#[derive(Debug, Clone)]
pub struct Cut {
    /// The watermark the cut was resolved at (after any session clamp).
    pub watermark: Watermark,
    /// `Arc`-shared view contents — no tuple data is copied.
    pub views: BTreeMap<ViewId, Arc<Relation>>,
}

/// One read a session performed, retained for certification. Holds `Arc`
/// handles, so keeping every observation of a run is cheap.
#[derive(Debug, Clone)]
pub struct ReadObservation {
    pub session: SessionId,
    /// Per-session read counter (establishes the session's read order even
    /// when observations from many sessions are merged into one list).
    pub seq: u64,
    pub cut: Cut,
}

/// Metrics of one read, for the observability histograms.
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    pub observation: ReadObservation,
    /// `head − watermark` at read time, in commits.
    pub staleness: u64,
    /// Longest version chain among the requested views at read time.
    pub chain_len: u64,
    /// `head − floor` at read time: how much history GC is retaining.
    pub gc_lag: u64,
    /// Clock of the newest stamped publication at or below the effective
    /// watermark, handed to the reader through the store's mutex — the
    /// happens-before edge that entitles it to observe this cut. `None`
    /// when publishes are unstamped (audit off / sim runtime).
    pub publish_stamp: Option<VectorClock>,
    /// GC the read's own pin advance triggered, if any.
    pub gc: Option<GcReceipt>,
}

/// Evidence of one GC floor advance, for the happens-before audit.
#[derive(Debug, Clone, PartialEq)]
pub struct GcReceipt {
    /// The new floor; versions strictly below it were reclaimed.
    pub floor: Watermark,
    /// Chain entries reclaimed by this advance.
    pub pruned: u64,
    /// Join of every live session's pin stamp plus every departed
    /// session's final stamp: the causal license under which pruning
    /// below the floor is legitimate. `None` when no stamped reader
    /// ever pinned the store.
    pub license: Option<VectorClock>,
}

/// Evidence returned by [`VersionedCuts::publish_stamped`].
#[derive(Debug, Clone, PartialEq)]
pub struct PublishReceipt {
    pub watermark: Watermark,
    /// GC this publication triggered, if the floor advanced.
    pub gc: Option<GcReceipt>,
}

/// Store-wide counters, sampled via [`VersionedCuts::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CutStats {
    /// Commits published.
    pub published: u64,
    /// Chain entries reclaimed by GC.
    pub pruned: u64,
    /// Reads served.
    pub reads: u64,
}

/// A live session's GC pin: its last-seen watermark plus the clock it
/// carried on its last stamped read (what licenses pruning below it).
struct Pin {
    at: Watermark,
    stamp: Option<Arc<VectorClock>>,
}

struct Inner {
    /// Per view: version chain sorted by ascending watermark. The entry
    /// at the chain head is the *base* — the newest version at or below
    /// the GC floor — and is never pruned.
    chains: BTreeMap<ViewId, Vec<(Watermark, Arc<Relation>)>>,
    /// Clock of each stamped publication, by watermark. Pruned with the
    /// chains (the newest entry at or below the floor is kept, so every
    /// retained cut still resolves to a stamp).
    published: BTreeMap<Watermark, Arc<VectorClock>>,
    /// Newest published watermark.
    head: Watermark,
    /// GC floor: versions strictly below it (except each chain's base)
    /// are reclaimed. Advanced to the minimum session pin, monotone.
    floor: Watermark,
    /// Live sessions: session → pin.
    pins: BTreeMap<SessionId, Pin>,
    /// Join of the final stamps of dropped sessions: their reads must
    /// stay licensed after the pin is gone.
    departed: Option<VectorClock>,
    next_session: SessionId,
    stats: CutStats,
}

impl Inner {
    /// Advance the floor to the slowest live session (or the head when no
    /// session is live) and prune every chain entry strictly below it,
    /// keeping the newest entry at or below the floor as the base.
    /// Returns a receipt when the floor actually advanced.
    fn gc(&mut self) -> Option<GcReceipt> {
        let target = self.pins.values().map(|p| p.at).min().unwrap_or(self.head);
        if target <= self.floor {
            return None;
        }
        self.floor = target;
        let mut pruned = 0u64;
        for chain in self.chains.values_mut() {
            // Index of the newest entry at or below the floor: everything
            // before it is unreachable by any current or future read.
            let base = chain.partition_point(|(w, _)| *w <= self.floor);
            if base > 1 {
                pruned += (base - 1) as u64;
                chain.drain(..base - 1);
            }
        }
        self.stats.pruned += pruned;
        // Keep the newest stamp at or below the floor (the base cut's),
        // drop everything older.
        if let Some(base_w) = self
            .published
            .range(..=self.floor)
            .next_back()
            .map(|(w, _)| *w)
        {
            self.published = self.published.split_off(&base_w);
        }
        // The license: every clock whose advance allowed this floor move.
        let mut license: Option<VectorClock> = None;
        for stamp in self
            .pins
            .values()
            .filter_map(|p| p.stamp.as_deref())
            .chain(self.departed.as_ref())
        {
            license.get_or_insert_with(VectorClock::new).join(stamp);
        }
        Some(GcReceipt {
            floor: self.floor,
            pruned,
            license,
        })
    }

    /// Resolve one view at `w`: newest version at or below `w`.
    fn resolve(&self, view: ViewId, w: Watermark) -> Result<Arc<Relation>, ReadError> {
        let chain = self.chains.get(&view).ok_or(ReadError::UnknownView(view))?;
        let idx = chain.partition_point(|(vw, _)| *vw <= w);
        if idx == 0 {
            // Below the chain's base: only possible for a view published
            // (installed) after `w` — there was no such view at that cut.
            return Err(ReadError::UnknownView(view));
        }
        Ok(Arc::clone(&chain[idx - 1].1))
    }
}

/// The shared MVCC version store (clone = another handle to the same
/// store). Writers publish whole commits; [`ReadSession`]s read cuts.
///
/// ```
/// use mvc_core::{ActionList, TxnSeq, UpdateId, ViewId};
/// use mvc_readpath::VersionedCuts;
/// use mvc_relational::{tuple, Delta, Relation, Schema};
/// use mvc_warehouse::{StoreTxn, Warehouse};
///
/// let mut w = Warehouse::new(false);
/// w.register_view(ViewId(1), "V", Relation::new(Schema::ints(&["a", "b"]))).unwrap();
///
/// // Seed the store with the pre-commit state, open a reader session.
/// let cuts = VersionedCuts::new();
/// cuts.seed(0, w.read(&[ViewId(1)]));
/// let mut session = cuts.open_session();
///
/// // One committed transaction, published under its commit watermark.
/// let mut d = Delta::new();
/// d.insert(tuple![1, 2]);
/// let txn = StoreTxn {
///     seq: TxnSeq(1),
///     rows: vec![UpdateId(1)],
///     views: [ViewId(1)].into(),
///     frontier: UpdateId(1),
///     actions: vec![ActionList::single(ViewId(1), UpdateId(1), d)],
/// };
/// let watermark = w.apply(&txn).unwrap().commit_index;
/// cuts.publish(watermark, w.read(&[ViewId(1)]));
///
/// // Snapshot read at the watermark — no warehouse lock involved.
/// let read = session.read_at(watermark, &[ViewId(1)]).unwrap();
/// assert!(read.observation.cut.views[&ViewId(1)].contains(&tuple![1, 2]));
/// ```
#[derive(Clone)]
pub struct VersionedCuts {
    inner: Arc<AuditedMutex<Inner>>,
}

impl Default for VersionedCuts {
    fn default() -> Self {
        VersionedCuts::new()
    }
}

impl VersionedCuts {
    pub fn new() -> Self {
        VersionedCuts {
            inner: Arc::new(AuditedMutex::new(
                "readpath.cuts",
                Inner {
                    chains: BTreeMap::new(),
                    published: BTreeMap::new(),
                    head: 0,
                    floor: 0,
                    pins: BTreeMap::new(),
                    departed: None,
                    next_session: 0,
                    stats: CutStats::default(),
                },
            )),
        }
    }

    /// Seed the store with the initial view contents at `base` (0 for a
    /// fresh warehouse; a recovered run seeds at its restored commit
    /// count). Must precede any `publish`.
    pub fn seed<I>(&self, base: Watermark, views: I)
    where
        I: IntoIterator<Item = (ViewId, Arc<Relation>)>,
    {
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.head, 0, "seed precedes publishes");
        inner.head = base;
        inner.floor = base;
        for (v, rel) in views {
            inner.chains.entry(v).or_default().push((base, rel));
        }
    }

    /// Publish one committed transaction's changed views under its commit
    /// watermark. Watermarks must arrive in commit order (strictly
    /// increasing); the caller guarantees this by publishing under the
    /// same lock that serialized the commit.
    pub fn publish<I>(&self, watermark: Watermark, changed: I)
    where
        I: IntoIterator<Item = (ViewId, Arc<Relation>)>,
    {
        self.publish_stamped(watermark, changed, None);
    }

    /// [`VersionedCuts::publish`] carrying the publishing commit's vector
    /// clock, for the happens-before audit: readers resolving this cut
    /// receive the stamp back through the store's mutex, and the receipt
    /// reports any GC the publication triggered together with its causal
    /// license.
    pub fn publish_stamped<I>(
        &self,
        watermark: Watermark,
        changed: I,
        stamp: Option<Arc<VectorClock>>,
    ) -> PublishReceipt
    where
        I: IntoIterator<Item = (ViewId, Arc<Relation>)>,
    {
        let mut inner = self.inner.lock();
        assert!(
            watermark > inner.head,
            "publish watermark {watermark} not past head {}",
            inner.head
        );
        inner.head = watermark;
        for (v, rel) in changed {
            inner.chains.entry(v).or_default().push((watermark, rel));
        }
        if let Some(stamp) = stamp {
            inner.published.insert(watermark, stamp);
        }
        inner.stats.published += 1;
        let gc = inner.gc();
        PublishReceipt { watermark, gc }
    }

    /// Open a reader session, pinned at the current floor (it may read
    /// any retained cut; its pin advances as it reads).
    pub fn open_session(&self) -> ReadSession {
        let mut inner = self.inner.lock();
        let id = inner.next_session;
        inner.next_session += 1;
        let pin = inner.floor;
        inner.pins.insert(
            id,
            Pin {
                at: pin,
                stamp: None,
            },
        );
        ReadSession {
            store: self.clone(),
            id,
            last_seen: pin,
            reads: 0,
        }
    }

    pub fn head(&self) -> Watermark {
        self.inner.lock().head
    }

    /// Current GC floor (= slowest live session, or head when idle).
    pub fn floor(&self) -> Watermark {
        self.inner.lock().floor
    }

    pub fn stats(&self) -> CutStats {
        self.inner.lock().stats
    }

    /// Retained chain entries across all views (memory proxy).
    pub fn retained_versions(&self) -> usize {
        self.inner.lock().chains.values().map(Vec::len).sum()
    }
}

/// A reader handle over one [`VersionedCuts`] store, offering snapshot
/// reads with read-your-watermark monotonicity. Dropping the session
/// releases its GC pin.
pub struct ReadSession {
    store: VersionedCuts,
    id: SessionId,
    last_seen: Watermark,
    reads: u64,
}

impl ReadSession {
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Watermark of the newest cut this session has observed.
    pub fn last_seen(&self) -> Watermark {
        self.last_seen
    }

    /// Snapshot read at `watermark`. The effective watermark is clamped
    /// *up* to the session's last-seen cut (never down — that is the
    /// monotonic-session guarantee); requesting past the head is an
    /// error. Advances the session's pin to the effective watermark.
    pub fn read_at(
        &mut self,
        watermark: Watermark,
        views: &[ViewId],
    ) -> Result<ReadOutcome, ReadError> {
        self.read_at_stamped(watermark, views, None)
    }

    /// [`ReadSession::read_at`] carrying the reader's vector clock
    /// (ticked just before the call), for the happens-before audit. The
    /// stamp becomes the session's new pin stamp — the clock under which
    /// pruning at or below this read is licensed — and the outcome hands
    /// back the cut's publish stamp for the reader to join.
    pub fn read_at_stamped(
        &mut self,
        watermark: Watermark,
        views: &[ViewId],
        stamp: Option<Arc<VectorClock>>,
    ) -> Result<ReadOutcome, ReadError> {
        let mut inner = self.store.inner.lock();
        if watermark > inner.head {
            return Err(ReadError::Unpublished {
                requested: watermark,
                head: inner.head,
            });
        }
        // Monotonicity clamp; the floor clamp is belt-and-braces (the
        // session's own pin keeps the floor at or below `last_seen`).
        let effective = watermark.max(self.last_seen).max(inner.floor);
        let mut cut = BTreeMap::new();
        let mut chain_len = 0u64;
        for &v in views {
            cut.insert(v, inner.resolve(v, effective)?);
            chain_len = chain_len.max(inner.chains[&v].len() as u64);
        }
        let staleness = inner.head - effective;
        let gc_lag = inner.head - inner.floor;
        let publish_stamp = inner
            .published
            .range(..=effective)
            .next_back()
            .map(|(_, s)| (**s).clone());
        self.last_seen = effective;
        inner.pins.insert(
            self.id,
            Pin {
                at: effective,
                stamp,
            },
        );
        inner.stats.reads += 1;
        let gc = inner.gc();
        self.reads += 1;
        Ok(ReadOutcome {
            observation: ReadObservation {
                session: self.id,
                seq: self.reads,
                cut: Cut {
                    watermark: effective,
                    views: cut,
                },
            },
            staleness,
            chain_len,
            gc_lag,
            publish_stamp,
            gc,
        })
    }

    /// Read the newest published cut.
    pub fn read_latest(&mut self, views: &[ViewId]) -> Result<ReadOutcome, ReadError> {
        self.read_latest_stamped(views, None)
    }

    /// [`ReadSession::read_latest`], stamped like
    /// [`ReadSession::read_at_stamped`].
    pub fn read_latest_stamped(
        &mut self,
        views: &[ViewId],
        stamp: Option<Arc<VectorClock>>,
    ) -> Result<ReadOutcome, ReadError> {
        let head = self.store.inner.lock().head;
        self.read_at_stamped(head, views, stamp)
    }
}

impl Drop for ReadSession {
    fn drop(&mut self) {
        let mut inner = self.store.inner.lock();
        // Fold the session's final stamp into the departed join: its
        // reads must stay licensed once the pin no longer exists.
        if let Some(Pin { stamp: Some(s), .. }) = inner.pins.remove(&self.id) {
            match &mut inner.departed {
                Some(d) => d.join(&s),
                None => inner.departed = Some((*s).clone()),
            }
        }
        inner.gc();
    }
}

/// Why an observed cut failed certification.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadViolation {
    pub session: SessionId,
    pub seq: u64,
    pub watermark: Watermark,
    pub detail: String,
}

impl fmt::Display for ReadViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "session {} read #{} at watermark {}: {}",
            self.session, self.seq, self.watermark, self.detail
        )
    }
}

impl std::error::Error for ReadViolation {}

/// Certificate summarizing a successful [`verify_observations`] pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadCertificate {
    pub observations: usize,
    pub sessions: usize,
    pub max_watermark: Watermark,
}

/// Locate the committed record at `watermark` by `commit_index`. History
/// is in commit order but may have been pruned below a checkpoint, so
/// this binary-searches rather than indexing.
fn record_at(history: &[CommittedTxn], watermark: Watermark) -> Option<&CommittedTxn> {
    let idx = history.partition_point(|r| r.commit_index < watermark);
    history.get(idx).filter(|r| r.commit_index == watermark)
}

/// The read-side consistency check: certify that
///
/// 1. per session, watermarks are monotone in read order (the
///    read-your-watermark guarantee actually held), and
/// 2. every observed cut fingerprint-matches the committed state vector
///    at its watermark — i.e. each read saw one of the mutually
///    consistent states the write-side oracle certifies, never a torn or
///    fabricated mixture.
///
/// `initial` holds the pre-any-commit fingerprints (for watermark-0
/// observations). Returns the first violation found.
pub fn verify_observations(
    observations: &[ReadObservation],
    history: &[CommittedTxn],
    initial: &BTreeMap<ViewId, u64>,
) -> Result<ReadCertificate, ReadViolation> {
    let mut last: BTreeMap<SessionId, (u64, Watermark)> = BTreeMap::new();
    let mut cert = ReadCertificate::default();
    for obs in observations {
        let violation = |detail: String| ReadViolation {
            session: obs.session,
            seq: obs.seq,
            watermark: obs.cut.watermark,
            detail,
        };
        // Session monotonicity, ordered by the per-session read counter.
        if let Some(&(prev_seq, prev_w)) = last.get(&obs.session) {
            if obs.seq > prev_seq && obs.cut.watermark < prev_w {
                return Err(violation(format!(
                    "session watermark regressed from {prev_w} (read #{prev_seq})"
                )));
            }
            if obs.seq > prev_seq {
                last.insert(obs.session, (obs.seq, obs.cut.watermark));
            } else if obs.cut.watermark > prev_w {
                return Err(violation(format!(
                    "later read #{prev_seq} saw older watermark {prev_w}"
                )));
            }
        } else {
            last.insert(obs.session, (obs.seq, obs.cut.watermark));
        }
        // Cut certification against the committed state vector.
        let expected: &BTreeMap<ViewId, u64> = if obs.cut.watermark == 0 {
            initial
        } else {
            match record_at(history, obs.cut.watermark) {
                Some(rec) => &rec.fingerprints,
                None => {
                    return Err(violation("no committed record at this watermark".into()));
                }
            }
        };
        for (v, rel) in &obs.cut.views {
            match expected.get(v) {
                Some(&fp) if rel.fingerprint() == fp => {}
                Some(_) => {
                    return Err(violation(format!(
                        "view {v} does not match the committed state vector"
                    )));
                }
                None => {
                    return Err(violation(format!(
                        "view {v} not part of the state vector at this watermark"
                    )));
                }
            }
        }
        cert.observations += 1;
        cert.max_watermark = cert.max_watermark.max(obs.cut.watermark);
    }
    cert.sessions = last.len();
    Ok(cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_core::{ActionList, TxnSeq, UpdateId};
    use mvc_relational::{tuple, Delta, Schema};
    use mvc_warehouse::{StoreTxn, Warehouse};

    fn wh() -> Warehouse {
        let mut w = Warehouse::new(false);
        w.register_view(ViewId(1), "V1", Relation::new(Schema::ints(&["a", "b"])))
            .unwrap();
        w.register_view(ViewId(2), "V2", Relation::new(Schema::ints(&["b", "c"])))
            .unwrap();
        w
    }

    fn ins_txn(seq: u64, view: u32, vals: (i64, i64)) -> StoreTxn {
        let mut d = Delta::new();
        d.insert(tuple![vals.0, vals.1]);
        let al = ActionList::single(ViewId(view), UpdateId(seq), d);
        StoreTxn {
            seq: TxnSeq(seq),
            rows: vec![UpdateId(seq)],
            views: [ViewId(view)].into(),
            frontier: UpdateId(seq),
            actions: vec![al],
        }
    }

    /// Warehouse + store wired like a runtime: every apply publishes the
    /// changed views under the commit watermark.
    fn commit(w: &mut Warehouse, cuts: &VersionedCuts, txn: &StoreTxn) {
        let (watermark, views) = {
            let rec = w.apply(txn).unwrap();
            (
                rec.commit_index,
                rec.views.iter().copied().collect::<Vec<_>>(),
            )
        };
        cuts.publish(watermark, w.read(&views));
    }

    fn seeded(w: &Warehouse) -> VersionedCuts {
        let cuts = VersionedCuts::new();
        let ids: Vec<ViewId> = w.view_ids().collect();
        cuts.seed(0, w.read(&ids));
        cuts
    }

    #[test]
    fn snapshot_reads_see_historical_cuts() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        commit(&mut w, &cuts, &ins_txn(1, 1, (1, 2)));
        commit(&mut w, &cuts, &ins_txn(2, 2, (2, 3)));
        // Watermark 1: V1 has its tuple, V2 is still initial.
        let at1 = s.read_at(1, &[ViewId(1), ViewId(2)]).unwrap();
        assert_eq!(at1.observation.cut.watermark, 1);
        assert!(at1.observation.cut.views[&ViewId(1)].contains(&tuple![1, 2]));
        assert!(at1.observation.cut.views[&ViewId(2)].is_empty());
        assert_eq!(at1.staleness, 1, "head is 2");
        let at2 = s.read_latest(&[ViewId(2)]).unwrap();
        assert!(at2.observation.cut.views[&ViewId(2)].contains(&tuple![2, 3]));
        verify_observations(
            &[at1.observation, at2.observation],
            w.history(),
            &BTreeMap::from([
                (
                    ViewId(1),
                    Relation::new(Schema::ints(&["a", "b"])).fingerprint(),
                ),
                (
                    ViewId(2),
                    Relation::new(Schema::ints(&["b", "c"])).fingerprint(),
                ),
            ]),
        )
        .unwrap();
    }

    #[test]
    fn session_never_goes_backwards() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        commit(&mut w, &cuts, &ins_txn(1, 1, (1, 2)));
        commit(&mut w, &cuts, &ins_txn(2, 1, (3, 4)));
        s.read_latest(&[ViewId(1)]).unwrap();
        assert_eq!(s.last_seen(), 2);
        // Requesting an older cut clamps up to the last-seen watermark.
        let o = s.read_at(0, &[ViewId(1)]).unwrap();
        assert_eq!(o.observation.cut.watermark, 2);
    }

    #[test]
    fn future_watermark_rejected() {
        let w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        assert_eq!(
            s.read_at(5, &[ViewId(1)]).unwrap_err(),
            ReadError::Unpublished {
                requested: 5,
                head: 0
            }
        );
        assert!(matches!(
            s.read_at(0, &[ViewId(9)]),
            Err(ReadError::UnknownView(ViewId(9)))
        ));
    }

    #[test]
    fn gc_floor_follows_slowest_session() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut slow = cuts.open_session();
        let mut fast = cuts.open_session();
        for i in 1..=6 {
            commit(&mut w, &cuts, &ins_txn(i, 1, (i as i64, i as i64)));
            fast.read_latest(&[ViewId(1)]).unwrap();
        }
        // The idle slow session pins the floor at its open watermark.
        assert_eq!(cuts.floor(), 0);
        assert_eq!(cuts.retained_versions(), 8, "nothing reclaimed yet");
        slow.read_latest(&[ViewId(1)]).unwrap();
        // Both sessions at head: everything below is reclaimed down to
        // one base version per view.
        assert_eq!(cuts.floor(), 6);
        assert_eq!(cuts.retained_versions(), 2);
        assert!(cuts.stats().pruned >= 6);
        // The base still serves reads at the floor.
        let o = slow.read_at(6, &[ViewId(1), ViewId(2)]).unwrap();
        assert_eq!(o.observation.cut.views[&ViewId(1)].len(), 6);
        drop(fast);
        drop(slow);
        assert_eq!(cuts.floor(), 6, "no sessions: floor at head");
    }

    #[test]
    fn dropped_session_releases_pin() {
        let mut w = wh();
        let cuts = seeded(&w);
        let slow = cuts.open_session();
        for i in 1..=4 {
            commit(&mut w, &cuts, &ins_txn(i, 1, (i as i64, 0)));
        }
        assert_eq!(cuts.floor(), 0);
        drop(slow);
        assert_eq!(cuts.floor(), 4);
        assert_eq!(cuts.retained_versions(), 2);
    }

    #[test]
    fn stamped_publish_travels_to_stamped_read() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        // Publish watermark 1 with a commit clock.
        let mut commit_clock = VectorClock::new();
        commit_clock.tick(42);
        let rec = w.apply(&ins_txn(1, 1, (1, 2))).unwrap();
        let views: Vec<ViewId> = rec.views.iter().copied().collect();
        let wm = rec.commit_index;
        let receipt =
            cuts.publish_stamped(wm, w.read(&views), Some(Arc::new(commit_clock.clone())));
        assert_eq!(receipt.watermark, 1);
        assert!(receipt.gc.is_none(), "idle session pins the floor");
        // A stamped read gets the publish stamp back through the mutex.
        let mut reader_clock = VectorClock::new();
        reader_clock.tick(2000);
        let out = s
            .read_latest_stamped(&[ViewId(1)], Some(Arc::new(reader_clock)))
            .unwrap();
        assert_eq!(out.publish_stamp.as_ref(), Some(&commit_clock));
    }

    #[test]
    fn gc_receipt_carries_pin_license() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        for i in 1..=3 {
            let rec = w.apply(&ins_txn(i, 1, (i as i64, 0))).unwrap();
            let views: Vec<ViewId> = rec.views.iter().copied().collect();
            let mut c = VectorClock::new();
            c.tick(42);
            cuts.publish_stamped(rec.commit_index, w.read(&views), Some(Arc::new(c)));
        }
        // The lagging session catches up: its own pin advance moves the
        // floor, and the receipt rides on the read outcome, licensed by
        // the stamp the reader just pinned.
        let mut reader_clock = VectorClock::new();
        reader_clock.tick(2000);
        let out = s
            .read_latest_stamped(&[ViewId(1)], Some(Arc::new(reader_clock.clone())))
            .unwrap();
        let gc = out.gc.expect("catch-up read advances the floor");
        assert_eq!(gc.floor, 3);
        assert!(gc.pruned >= 1);
        let license = gc.license.expect("stamped pin licenses the prune");
        assert!(license.dominates(&reader_clock));
        // Dropped sessions keep licensing through the departed join: with
        // no pins left, the next publish advances the floor to head.
        drop(s);
        let rec = w.apply(&ins_txn(4, 1, (4, 0))).unwrap();
        let views: Vec<ViewId> = rec.views.iter().copied().collect();
        let mut c = VectorClock::new();
        c.tick(42);
        let receipt = cuts.publish_stamped(rec.commit_index, w.read(&views), Some(Arc::new(c)));
        let gc = receipt.gc.expect("no pins: floor advances to head");
        assert_eq!(gc.floor, 4);
        assert!(gc
            .license
            .expect("departed stamp retained")
            .dominates(&reader_clock));
    }

    #[test]
    fn verification_catches_torn_cut() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        commit(&mut w, &cuts, &ins_txn(1, 1, (1, 2)));
        commit(&mut w, &cuts, &ins_txn(2, 2, (2, 3)));
        let good = s.read_latest(&[ViewId(1), ViewId(2)]).unwrap().observation;
        // Tamper: claim the watermark-2 cut held V2's *initial* content —
        // a torn read mixing two committed states.
        let mut torn = good.clone();
        torn.cut.views.insert(
            ViewId(2),
            Arc::new(Relation::new(Schema::ints(&["b", "c"]))),
        );
        let initial = BTreeMap::new();
        verify_observations(&[good], w.history(), &initial).unwrap();
        let err = verify_observations(&[torn], w.history(), &initial).unwrap_err();
        assert!(err.detail.contains("does not match"), "{err}");
    }

    #[test]
    fn verification_catches_watermark_regression() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        commit(&mut w, &cuts, &ins_txn(1, 1, (1, 2)));
        let first = s.read_latest(&[ViewId(1)]).unwrap().observation;
        commit(&mut w, &cuts, &ins_txn(2, 1, (3, 4)));
        let second = s.read_latest(&[ViewId(1)]).unwrap().observation;
        // Forge a regression: swap the two cuts' sequence numbers.
        let mut forged_first = second.clone();
        forged_first.seq = first.seq;
        let mut forged_second = first;
        forged_second.seq = second.seq;
        let err = verify_observations(
            &[forged_first, forged_second],
            w.history(),
            &BTreeMap::new(),
        )
        .unwrap_err();
        assert!(err.detail.contains("regressed"), "{err}");
    }

    #[test]
    fn verification_tolerates_pruned_history() {
        // Checkpoint-anchored retention: records below the floor are
        // pruned, yet observations at or above it still certify (the
        // record lookup goes by commit_index, not position).
        let mut w = wh();
        let cuts = seeded(&w);
        for i in 1..=5 {
            commit(&mut w, &cuts, &ins_txn(i, 1, (i as i64, 0)));
        }
        let mut s = cuts.open_session();
        let obs = s.read_at(5, &[ViewId(1)]).unwrap().observation;
        w.prune_history_below(4);
        verify_observations(std::slice::from_ref(&obs), w.history(), &BTreeMap::new()).unwrap();
        let mut old = obs;
        old.cut.watermark = 2; // pruned away
        let err = verify_observations(&[old], w.history(), &BTreeMap::new()).unwrap_err();
        assert!(err.detail.contains("no committed record"), "{err}");
    }
}
