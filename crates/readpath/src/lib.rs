//! # mvc-readpath
//!
//! The read path of the MVC reproduction: an MVCC layer over the
//! warehouse that retains multi-view cuts keyed by commit watermark, so
//! readers get snapshot-isolation multi-view reads (§1.1's customer
//! inquiry) without holding the warehouse lock while the merge pipeline
//! commits.
//!
//! Pieces:
//!
//! * [`VersionedCuts`] — the version store. Every committed warehouse
//!   transaction publishes `Arc`-shared handles of the views it changed
//!   under the commit's watermark (= `CommittedTxn::commit_index`, so
//!   watermark 0 is the initial pre-commit state). Per view the store
//!   keeps a version *chain*; a read at watermark `w` resolves each view
//!   to its newest version at or below `w` — a mutually consistent cut by
//!   construction, because the publisher publishes whole commits in
//!   commit order.
//! * [`ReadSession`] — a reader handle with *read-your-watermark*
//!   monotonicity: a session never observes a cut older than one it has
//!   already seen ([`ReadSession::read_at`] clamps the requested
//!   watermark up to the session's last seen cut). Each live session pins
//!   the store's GC floor at its last-seen watermark, so the slowest
//!   active session bounds retention and memory stays proportional to
//!   `head − floor`.
//! * [`verify_observations`] — the read-side half of the consistency
//!   oracle: every observed cut must fingerprint-match the committed
//!   state vector at its watermark (one of the mutually consistent states
//!   the write-side oracle certifies), and per-session watermarks must be
//!   monotone.
//!
//! All handles are `Arc`-shared: publishing a commit clones view handles,
//! never tuple data, and a read clones one `Arc` per requested view.

#![forbid(unsafe_code)]

use mvc_core::ViewId;
use mvc_relational::Relation;
use mvc_warehouse::CommittedTxn;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Commit watermark: `CommittedTxn::commit_index` of the newest commit a
/// cut reflects; 0 = the initial (pre-any-commit) state.
pub type Watermark = u64;

/// Identifies one [`ReadSession`] within its store.
pub type SessionId = u64;

/// Read-path errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadError {
    /// The requested watermark is ahead of everything published.
    Unpublished {
        requested: Watermark,
        head: Watermark,
    },
    /// A requested view has no version chain (never seeded or published).
    UnknownView(ViewId),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Unpublished { requested, head } => {
                write!(f, "watermark {requested} not yet published (head {head})")
            }
            ReadError::UnknownView(v) => write!(f, "view {v} has no version chain"),
        }
    }
}

impl std::error::Error for ReadError {}

/// A mutually consistent multi-view cut at one watermark.
#[derive(Debug, Clone)]
pub struct Cut {
    /// The watermark the cut was resolved at (after any session clamp).
    pub watermark: Watermark,
    /// `Arc`-shared view contents — no tuple data is copied.
    pub views: BTreeMap<ViewId, Arc<Relation>>,
}

/// One read a session performed, retained for certification. Holds `Arc`
/// handles, so keeping every observation of a run is cheap.
#[derive(Debug, Clone)]
pub struct ReadObservation {
    pub session: SessionId,
    /// Per-session read counter (establishes the session's read order even
    /// when observations from many sessions are merged into one list).
    pub seq: u64,
    pub cut: Cut,
}

/// Metrics of one read, for the observability histograms.
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    pub observation: ReadObservation,
    /// `head − watermark` at read time, in commits.
    pub staleness: u64,
    /// Longest version chain among the requested views at read time.
    pub chain_len: u64,
    /// `head − floor` at read time: how much history GC is retaining.
    pub gc_lag: u64,
}

/// Store-wide counters, sampled via [`VersionedCuts::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CutStats {
    /// Commits published.
    pub published: u64,
    /// Chain entries reclaimed by GC.
    pub pruned: u64,
    /// Reads served.
    pub reads: u64,
}

struct Inner {
    /// Per view: version chain sorted by ascending watermark. The entry
    /// at the chain head is the *base* — the newest version at or below
    /// the GC floor — and is never pruned.
    chains: BTreeMap<ViewId, Vec<(Watermark, Arc<Relation>)>>,
    /// Newest published watermark.
    head: Watermark,
    /// GC floor: versions strictly below it (except each chain's base)
    /// are reclaimed. Advanced to the minimum session pin, monotone.
    floor: Watermark,
    /// Live sessions: session → last-seen watermark (its pin).
    pins: BTreeMap<SessionId, Watermark>,
    next_session: SessionId,
    stats: CutStats,
}

impl Inner {
    /// Advance the floor to the slowest live session (or the head when no
    /// session is live) and prune every chain entry strictly below it,
    /// keeping the newest entry at or below the floor as the base.
    fn gc(&mut self) {
        let target = self.pins.values().copied().min().unwrap_or(self.head);
        if target <= self.floor {
            return;
        }
        self.floor = target;
        for chain in self.chains.values_mut() {
            // Index of the newest entry at or below the floor: everything
            // before it is unreachable by any current or future read.
            let base = chain.partition_point(|(w, _)| *w <= self.floor);
            if base > 1 {
                self.stats.pruned += (base - 1) as u64;
                chain.drain(..base - 1);
            }
        }
    }

    /// Resolve one view at `w`: newest version at or below `w`.
    fn resolve(&self, view: ViewId, w: Watermark) -> Result<Arc<Relation>, ReadError> {
        let chain = self.chains.get(&view).ok_or(ReadError::UnknownView(view))?;
        let idx = chain.partition_point(|(vw, _)| *vw <= w);
        if idx == 0 {
            // Below the chain's base: only possible for a view published
            // (installed) after `w` — there was no such view at that cut.
            return Err(ReadError::UnknownView(view));
        }
        Ok(Arc::clone(&chain[idx - 1].1))
    }
}

/// The shared MVCC version store (clone = another handle to the same
/// store). Writers publish whole commits; [`ReadSession`]s read cuts.
#[derive(Clone)]
pub struct VersionedCuts {
    inner: Arc<Mutex<Inner>>,
}

impl Default for VersionedCuts {
    fn default() -> Self {
        VersionedCuts::new()
    }
}

impl VersionedCuts {
    pub fn new() -> Self {
        VersionedCuts {
            inner: Arc::new(Mutex::new(Inner {
                chains: BTreeMap::new(),
                head: 0,
                floor: 0,
                pins: BTreeMap::new(),
                next_session: 0,
                stats: CutStats::default(),
            })),
        }
    }

    /// Seed the store with the initial view contents at `base` (0 for a
    /// fresh warehouse; a recovered run seeds at its restored commit
    /// count). Must precede any `publish`.
    pub fn seed<I>(&self, base: Watermark, views: I)
    where
        I: IntoIterator<Item = (ViewId, Arc<Relation>)>,
    {
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.head, 0, "seed precedes publishes");
        inner.head = base;
        inner.floor = base;
        for (v, rel) in views {
            inner.chains.entry(v).or_default().push((base, rel));
        }
    }

    /// Publish one committed transaction's changed views under its commit
    /// watermark. Watermarks must arrive in commit order (strictly
    /// increasing); the caller guarantees this by publishing under the
    /// same lock that serialized the commit.
    pub fn publish<I>(&self, watermark: Watermark, changed: I)
    where
        I: IntoIterator<Item = (ViewId, Arc<Relation>)>,
    {
        let mut inner = self.inner.lock();
        assert!(
            watermark > inner.head,
            "publish watermark {watermark} not past head {}",
            inner.head
        );
        inner.head = watermark;
        for (v, rel) in changed {
            inner.chains.entry(v).or_default().push((watermark, rel));
        }
        inner.stats.published += 1;
        inner.gc();
    }

    /// Open a reader session, pinned at the current floor (it may read
    /// any retained cut; its pin advances as it reads).
    pub fn open_session(&self) -> ReadSession {
        let mut inner = self.inner.lock();
        let id = inner.next_session;
        inner.next_session += 1;
        let pin = inner.floor;
        inner.pins.insert(id, pin);
        ReadSession {
            store: self.clone(),
            id,
            last_seen: pin,
            reads: 0,
        }
    }

    pub fn head(&self) -> Watermark {
        self.inner.lock().head
    }

    /// Current GC floor (= slowest live session, or head when idle).
    pub fn floor(&self) -> Watermark {
        self.inner.lock().floor
    }

    pub fn stats(&self) -> CutStats {
        self.inner.lock().stats
    }

    /// Retained chain entries across all views (memory proxy).
    pub fn retained_versions(&self) -> usize {
        self.inner.lock().chains.values().map(Vec::len).sum()
    }
}

/// A reader handle over one [`VersionedCuts`] store, offering snapshot
/// reads with read-your-watermark monotonicity. Dropping the session
/// releases its GC pin.
pub struct ReadSession {
    store: VersionedCuts,
    id: SessionId,
    last_seen: Watermark,
    reads: u64,
}

impl ReadSession {
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Watermark of the newest cut this session has observed.
    pub fn last_seen(&self) -> Watermark {
        self.last_seen
    }

    /// Snapshot read at `watermark`. The effective watermark is clamped
    /// *up* to the session's last-seen cut (never down — that is the
    /// monotonic-session guarantee); requesting past the head is an
    /// error. Advances the session's pin to the effective watermark.
    pub fn read_at(
        &mut self,
        watermark: Watermark,
        views: &[ViewId],
    ) -> Result<ReadOutcome, ReadError> {
        let mut inner = self.store.inner.lock();
        if watermark > inner.head {
            return Err(ReadError::Unpublished {
                requested: watermark,
                head: inner.head,
            });
        }
        // Monotonicity clamp; the floor clamp is belt-and-braces (the
        // session's own pin keeps the floor at or below `last_seen`).
        let effective = watermark.max(self.last_seen).max(inner.floor);
        let mut cut = BTreeMap::new();
        let mut chain_len = 0u64;
        for &v in views {
            cut.insert(v, inner.resolve(v, effective)?);
            chain_len = chain_len.max(inner.chains[&v].len() as u64);
        }
        let staleness = inner.head - effective;
        let gc_lag = inner.head - inner.floor;
        self.last_seen = effective;
        inner.pins.insert(self.id, effective);
        inner.stats.reads += 1;
        inner.gc();
        self.reads += 1;
        Ok(ReadOutcome {
            observation: ReadObservation {
                session: self.id,
                seq: self.reads,
                cut: Cut {
                    watermark: effective,
                    views: cut,
                },
            },
            staleness,
            chain_len,
            gc_lag,
        })
    }

    /// Read the newest published cut.
    pub fn read_latest(&mut self, views: &[ViewId]) -> Result<ReadOutcome, ReadError> {
        let head = self.store.inner.lock().head;
        self.read_at(head, views)
    }
}

impl Drop for ReadSession {
    fn drop(&mut self) {
        let mut inner = self.store.inner.lock();
        inner.pins.remove(&self.id);
        inner.gc();
    }
}

/// Why an observed cut failed certification.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadViolation {
    pub session: SessionId,
    pub seq: u64,
    pub watermark: Watermark,
    pub detail: String,
}

impl fmt::Display for ReadViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "session {} read #{} at watermark {}: {}",
            self.session, self.seq, self.watermark, self.detail
        )
    }
}

impl std::error::Error for ReadViolation {}

/// Certificate summarizing a successful [`verify_observations`] pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadCertificate {
    pub observations: usize,
    pub sessions: usize,
    pub max_watermark: Watermark,
}

/// Locate the committed record at `watermark` by `commit_index`. History
/// is in commit order but may have been pruned below a checkpoint, so
/// this binary-searches rather than indexing.
fn record_at(history: &[CommittedTxn], watermark: Watermark) -> Option<&CommittedTxn> {
    let idx = history.partition_point(|r| r.commit_index < watermark);
    history.get(idx).filter(|r| r.commit_index == watermark)
}

/// The read-side consistency check: certify that
///
/// 1. per session, watermarks are monotone in read order (the
///    read-your-watermark guarantee actually held), and
/// 2. every observed cut fingerprint-matches the committed state vector
///    at its watermark — i.e. each read saw one of the mutually
///    consistent states the write-side oracle certifies, never a torn or
///    fabricated mixture.
///
/// `initial` holds the pre-any-commit fingerprints (for watermark-0
/// observations). Returns the first violation found.
pub fn verify_observations(
    observations: &[ReadObservation],
    history: &[CommittedTxn],
    initial: &BTreeMap<ViewId, u64>,
) -> Result<ReadCertificate, ReadViolation> {
    let mut last: BTreeMap<SessionId, (u64, Watermark)> = BTreeMap::new();
    let mut cert = ReadCertificate::default();
    for obs in observations {
        let violation = |detail: String| ReadViolation {
            session: obs.session,
            seq: obs.seq,
            watermark: obs.cut.watermark,
            detail,
        };
        // Session monotonicity, ordered by the per-session read counter.
        if let Some(&(prev_seq, prev_w)) = last.get(&obs.session) {
            if obs.seq > prev_seq && obs.cut.watermark < prev_w {
                return Err(violation(format!(
                    "session watermark regressed from {prev_w} (read #{prev_seq})"
                )));
            }
            if obs.seq > prev_seq {
                last.insert(obs.session, (obs.seq, obs.cut.watermark));
            } else if obs.cut.watermark > prev_w {
                return Err(violation(format!(
                    "later read #{prev_seq} saw older watermark {prev_w}"
                )));
            }
        } else {
            last.insert(obs.session, (obs.seq, obs.cut.watermark));
        }
        // Cut certification against the committed state vector.
        let expected: &BTreeMap<ViewId, u64> = if obs.cut.watermark == 0 {
            initial
        } else {
            match record_at(history, obs.cut.watermark) {
                Some(rec) => &rec.fingerprints,
                None => {
                    return Err(violation("no committed record at this watermark".into()));
                }
            }
        };
        for (v, rel) in &obs.cut.views {
            match expected.get(v) {
                Some(&fp) if rel.fingerprint() == fp => {}
                Some(_) => {
                    return Err(violation(format!(
                        "view {v} does not match the committed state vector"
                    )));
                }
                None => {
                    return Err(violation(format!(
                        "view {v} not part of the state vector at this watermark"
                    )));
                }
            }
        }
        cert.observations += 1;
        cert.max_watermark = cert.max_watermark.max(obs.cut.watermark);
    }
    cert.sessions = last.len();
    Ok(cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_core::{ActionList, TxnSeq, UpdateId};
    use mvc_relational::{tuple, Delta, Schema};
    use mvc_warehouse::{StoreTxn, Warehouse};

    fn wh() -> Warehouse {
        let mut w = Warehouse::new(false);
        w.register_view(ViewId(1), "V1", Relation::new(Schema::ints(&["a", "b"])))
            .unwrap();
        w.register_view(ViewId(2), "V2", Relation::new(Schema::ints(&["b", "c"])))
            .unwrap();
        w
    }

    fn ins_txn(seq: u64, view: u32, vals: (i64, i64)) -> StoreTxn {
        let mut d = Delta::new();
        d.insert(tuple![vals.0, vals.1]);
        let al = ActionList::single(ViewId(view), UpdateId(seq), d);
        StoreTxn {
            seq: TxnSeq(seq),
            rows: vec![UpdateId(seq)],
            views: [ViewId(view)].into(),
            frontier: UpdateId(seq),
            actions: vec![al],
        }
    }

    /// Warehouse + store wired like a runtime: every apply publishes the
    /// changed views under the commit watermark.
    fn commit(w: &mut Warehouse, cuts: &VersionedCuts, txn: &StoreTxn) {
        let (watermark, views) = {
            let rec = w.apply(txn).unwrap();
            (
                rec.commit_index,
                rec.views.iter().copied().collect::<Vec<_>>(),
            )
        };
        cuts.publish(watermark, w.read(&views));
    }

    fn seeded(w: &Warehouse) -> VersionedCuts {
        let cuts = VersionedCuts::new();
        let ids: Vec<ViewId> = w.view_ids().collect();
        cuts.seed(0, w.read(&ids));
        cuts
    }

    #[test]
    fn snapshot_reads_see_historical_cuts() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        commit(&mut w, &cuts, &ins_txn(1, 1, (1, 2)));
        commit(&mut w, &cuts, &ins_txn(2, 2, (2, 3)));
        // Watermark 1: V1 has its tuple, V2 is still initial.
        let at1 = s.read_at(1, &[ViewId(1), ViewId(2)]).unwrap();
        assert_eq!(at1.observation.cut.watermark, 1);
        assert!(at1.observation.cut.views[&ViewId(1)].contains(&tuple![1, 2]));
        assert!(at1.observation.cut.views[&ViewId(2)].is_empty());
        assert_eq!(at1.staleness, 1, "head is 2");
        let at2 = s.read_latest(&[ViewId(2)]).unwrap();
        assert!(at2.observation.cut.views[&ViewId(2)].contains(&tuple![2, 3]));
        verify_observations(
            &[at1.observation, at2.observation],
            w.history(),
            &BTreeMap::from([
                (
                    ViewId(1),
                    Relation::new(Schema::ints(&["a", "b"])).fingerprint(),
                ),
                (
                    ViewId(2),
                    Relation::new(Schema::ints(&["b", "c"])).fingerprint(),
                ),
            ]),
        )
        .unwrap();
    }

    #[test]
    fn session_never_goes_backwards() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        commit(&mut w, &cuts, &ins_txn(1, 1, (1, 2)));
        commit(&mut w, &cuts, &ins_txn(2, 1, (3, 4)));
        s.read_latest(&[ViewId(1)]).unwrap();
        assert_eq!(s.last_seen(), 2);
        // Requesting an older cut clamps up to the last-seen watermark.
        let o = s.read_at(0, &[ViewId(1)]).unwrap();
        assert_eq!(o.observation.cut.watermark, 2);
    }

    #[test]
    fn future_watermark_rejected() {
        let w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        assert_eq!(
            s.read_at(5, &[ViewId(1)]).unwrap_err(),
            ReadError::Unpublished {
                requested: 5,
                head: 0
            }
        );
        assert!(matches!(
            s.read_at(0, &[ViewId(9)]),
            Err(ReadError::UnknownView(ViewId(9)))
        ));
    }

    #[test]
    fn gc_floor_follows_slowest_session() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut slow = cuts.open_session();
        let mut fast = cuts.open_session();
        for i in 1..=6 {
            commit(&mut w, &cuts, &ins_txn(i, 1, (i as i64, i as i64)));
            fast.read_latest(&[ViewId(1)]).unwrap();
        }
        // The idle slow session pins the floor at its open watermark.
        assert_eq!(cuts.floor(), 0);
        assert_eq!(cuts.retained_versions(), 8, "nothing reclaimed yet");
        slow.read_latest(&[ViewId(1)]).unwrap();
        // Both sessions at head: everything below is reclaimed down to
        // one base version per view.
        assert_eq!(cuts.floor(), 6);
        assert_eq!(cuts.retained_versions(), 2);
        assert!(cuts.stats().pruned >= 6);
        // The base still serves reads at the floor.
        let o = slow.read_at(6, &[ViewId(1), ViewId(2)]).unwrap();
        assert_eq!(o.observation.cut.views[&ViewId(1)].len(), 6);
        drop(fast);
        drop(slow);
        assert_eq!(cuts.floor(), 6, "no sessions: floor at head");
    }

    #[test]
    fn dropped_session_releases_pin() {
        let mut w = wh();
        let cuts = seeded(&w);
        let slow = cuts.open_session();
        for i in 1..=4 {
            commit(&mut w, &cuts, &ins_txn(i, 1, (i as i64, 0)));
        }
        assert_eq!(cuts.floor(), 0);
        drop(slow);
        assert_eq!(cuts.floor(), 4);
        assert_eq!(cuts.retained_versions(), 2);
    }

    #[test]
    fn verification_catches_torn_cut() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        commit(&mut w, &cuts, &ins_txn(1, 1, (1, 2)));
        commit(&mut w, &cuts, &ins_txn(2, 2, (2, 3)));
        let good = s.read_latest(&[ViewId(1), ViewId(2)]).unwrap().observation;
        // Tamper: claim the watermark-2 cut held V2's *initial* content —
        // a torn read mixing two committed states.
        let mut torn = good.clone();
        torn.cut.views.insert(
            ViewId(2),
            Arc::new(Relation::new(Schema::ints(&["b", "c"]))),
        );
        let initial = BTreeMap::new();
        verify_observations(&[good], w.history(), &initial).unwrap();
        let err = verify_observations(&[torn], w.history(), &initial).unwrap_err();
        assert!(err.detail.contains("does not match"), "{err}");
    }

    #[test]
    fn verification_catches_watermark_regression() {
        let mut w = wh();
        let cuts = seeded(&w);
        let mut s = cuts.open_session();
        commit(&mut w, &cuts, &ins_txn(1, 1, (1, 2)));
        let first = s.read_latest(&[ViewId(1)]).unwrap().observation;
        commit(&mut w, &cuts, &ins_txn(2, 1, (3, 4)));
        let second = s.read_latest(&[ViewId(1)]).unwrap().observation;
        // Forge a regression: swap the two cuts' sequence numbers.
        let mut forged_first = second.clone();
        forged_first.seq = first.seq;
        let mut forged_second = first;
        forged_second.seq = second.seq;
        let err = verify_observations(
            &[forged_first, forged_second],
            w.history(),
            &BTreeMap::new(),
        )
        .unwrap_err();
        assert!(err.detail.contains("regressed"), "{err}");
    }

    #[test]
    fn verification_tolerates_pruned_history() {
        // Checkpoint-anchored retention: records below the floor are
        // pruned, yet observations at or above it still certify (the
        // record lookup goes by commit_index, not position).
        let mut w = wh();
        let cuts = seeded(&w);
        for i in 1..=5 {
            commit(&mut w, &cuts, &ins_txn(i, 1, (i as i64, 0)));
        }
        let mut s = cuts.open_session();
        let obs = s.read_at(5, &[ViewId(1)]).unwrap().observation;
        w.prune_history_below(4);
        verify_observations(std::slice::from_ref(&obs), w.history(), &BTreeMap::new()).unwrap();
        let mut old = obs;
        old.cut.watermark = 2; // pruned away
        let err = verify_observations(&[old], w.history(), &BTreeMap::new()).unwrap_err();
        assert!(err.detail.contains("no committed record"), "{err}");
    }
}
