//! # mvc-core
//!
//! The data-model-independent core of *Multiple View Consistency for Data
//! Warehousing* (Zhuge, Wiener, Garcia-Molina; ICDE 1997):
//!
//! * the **ViewUpdateTable** ([`vut`]) with its white/red/gray/black
//!   coloring and per-entry jump states;
//! * the **Simple Painting Algorithm** ([`spa`], Algorithm 1) for complete
//!   view managers — MVC-complete and prompt (Theorem 4.1);
//! * the **Painting Algorithm** ([`pa`], Algorithm 2) for strongly
//!   consistent view managers — MVC-strongly-consistent and prompt
//!   (Theorem 5.1);
//! * **commit scheduling** ([`commit`], §4.3): sequential,
//!   dependency-aware, and batched (BWT) release of warehouse
//!   transactions;
//! * **merge distribution** ([`partition`], §6.1): partitioning view
//!   managers into independent merge groups;
//! * the composed **merge process** ([`merge`]) with the weakest-level
//!   algorithm selection rule of §6.3.
//!
//! Action-list payloads are an opaque type parameter: this crate never
//! inspects tuples, exactly mirroring the paper's claim that the MVC
//! algorithms are independent of the data model. The relational payload
//! lives in `mvc-warehouse`/`mvc-viewmgr`.

#![forbid(unsafe_code)]

pub mod action;
pub mod commit;
pub mod consistency;
pub mod error;
pub mod hb;
pub mod ids;
pub mod lock;
pub mod merge;
pub mod pa;
pub mod partition;
pub mod snapshot;
pub mod spa;
pub mod vut;

pub use action::{ActionList, WarehouseTxn};
pub use commit::{CommitPolicy, CommitScheduler, CommitStats};
pub use consistency::{ConsistencyLevel, MergeAlgorithm};
pub use error::MergeError;
pub use hb::{HbState, HbViolation, VectorClock};
pub use ids::{TxnSeq, UpdateId, ViewId};
pub use lock::{AcquisitionChain, AuditedMutex, AuditedRwLock, LockCycle, LockId};
pub use merge::{MergeProcess, MergeStats};
pub use pa::{Pa, PaStats};
pub use partition::Partitioning;
pub use snapshot::{
    EngineSnapshot, MergeSnapshot, PaSnapshot, PaintEvent, SchedulerSnapshot, SpaSnapshot,
    VutSnapshot,
};
pub use spa::{Spa, SpaStats};
pub use vut::{Color, Entry, Vut};
