//! Serializable state snapshots of the merge-process machinery, used by
//! the durability subsystem's checkpoints (crash recovery restores a
//! merge process from the last checkpoint and replays the log tail).
//!
//! Every snapshot struct mirrors the private fields of its live
//! counterpart exactly; conversion methods (`snapshot`/`from_snapshot`)
//! live next to the live types so the fields can stay private. Payloads
//! stay generic, matching the model-independence of the core.

use crate::action::{ActionList, WarehouseTxn};
use crate::commit::{CommitPolicy, CommitStats};
use crate::consistency::MergeAlgorithm;
use crate::ids::{TxnSeq, UpdateId, ViewId};
use crate::pa::PaStats;
use crate::spa::SpaStats;
use crate::vut::{Color, Entry};
use std::collections::BTreeMap;

/// One VUT paint transition, recorded for the durability audit trail
/// (replay never consumes these — recovery reconstructs colors by
/// re-running the engine — but the log makes every §4/§5 transition
/// inspectable post-mortem).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaintEvent {
    pub update: UpdateId,
    pub view: ViewId,
    pub color: Color,
    /// PA jump state at the moment of the transition.
    pub state: UpdateId,
}

/// Snapshot of a [`crate::vut::Vut`]. The per-column red index is not
/// captured — it is derivable from `rows` and rebuilt on restore.
#[derive(Debug, Clone)]
pub struct VutSnapshot<P> {
    pub views: Vec<ViewId>,
    pub rows: BTreeMap<UpdateId, BTreeMap<ViewId, Entry>>,
    pub wt: BTreeMap<UpdateId, Vec<ActionList<P>>>,
}

/// Snapshot of a [`crate::spa::Spa`] engine.
#[derive(Debug, Clone)]
pub struct SpaSnapshot<P> {
    pub vut: VutSnapshot<P>,
    pub max_rel: UpdateId,
    pub pending: BTreeMap<UpdateId, Vec<ActionList<P>>>,
    pub next_seq: TxnSeq,
    pub stats: SpaStats,
}

/// Snapshot of a [`crate::pa::Pa`] engine.
#[derive(Debug, Clone)]
pub struct PaSnapshot<P> {
    pub vut: VutSnapshot<P>,
    pub max_rel: UpdateId,
    pub pending: BTreeMap<UpdateId, Vec<ActionList<P>>>,
    pub next_seq: TxnSeq,
    pub last_covered: BTreeMap<ViewId, UpdateId>,
    pub stats: PaStats,
}

/// Snapshot of the engine variant inside a merge process.
#[derive(Debug, Clone)]
pub enum EngineSnapshot<P> {
    Spa(SpaSnapshot<P>),
    Pa(PaSnapshot<P>),
    PassThrough {
        next_seq: TxnSeq,
        stats: crate::merge::MergeStats,
    },
}

/// Snapshot of a [`crate::commit::CommitScheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerSnapshot<P> {
    pub policy: CommitPolicy,
    pub queue: Vec<WarehouseTxn<P>>,
    pub held_bwt: Option<WarehouseTxn<P>>,
    pub inflight: BTreeMap<TxnSeq, std::collections::BTreeSet<ViewId>>,
    pub stats: CommitStats,
}

/// Snapshot of a whole [`crate::merge::MergeProcess`].
#[derive(Debug, Clone)]
pub struct MergeSnapshot<P> {
    pub algorithm: MergeAlgorithm,
    pub engine: EngineSnapshot<P>,
    pub scheduler: SchedulerSnapshot<P>,
}
