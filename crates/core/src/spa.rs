//! The Simple Painting Algorithm (Algorithm 1, §4).
//!
//! SPA coordinates **complete** view managers: every relevant source
//! update `Ui` produces exactly one action list `AL^x_i` per relevant view
//! `Vx`. SPA holds action lists in the VUT and releases a row — all of a
//! row's action lists in one warehouse transaction — as soon as
//!
//! 1. every relevant AL for the row has arrived (no white entries), and
//! 2. for each view in the row, all earlier ALs from the same view manager
//!    have already been applied (no earlier red in the same column).
//!
//! Theorem 4.1: the resulting warehouse history is *complete* under MVC.
//! SPA is also *prompt*: a row is emitted in the same event-handling step
//! in which its enabling condition first becomes true.

use crate::action::{ActionList, WarehouseTxn};
use crate::error::MergeError;
use crate::ids::{TxnSeq, UpdateId, ViewId};
use crate::snapshot::SpaSnapshot;
use crate::vut::{Color, Vut};
use std::collections::{BTreeMap, BTreeSet};

/// SPA engine state. Event-driven: feed it `REL` sets and action lists;
/// it returns the warehouse transactions released by each event.
///
/// ```
/// use mvc_core::{ActionList, Spa, UpdateId, ViewId};
/// use std::collections::BTreeSet;
///
/// let mut spa: Spa<&str> = Spa::new([ViewId(1), ViewId(2)]);
/// let rel: BTreeSet<ViewId> = [ViewId(1), ViewId(2)].into();
/// // U1 is relevant to both views…
/// assert!(spa.on_rel(UpdateId(1), rel).unwrap().is_empty());
/// // …so the first action list is held…
/// let al1 = ActionList::single(ViewId(1), UpdateId(1), "ops");
/// assert!(spa.on_action(al1).unwrap().is_empty());
/// // …and the second releases both in ONE warehouse transaction.
/// let al2 = ActionList::single(ViewId(2), UpdateId(1), "ops");
/// let released = spa.on_action(al2).unwrap();
/// assert_eq!(released.len(), 1);
/// assert_eq!(released[0].actions.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Spa<P> {
    vut: Vut<P>,
    /// Highest (contiguous) REL received.
    max_rel: UpdateId,
    /// ALs that arrived before their REL (keyed by update id).
    pending: BTreeMap<UpdateId, Vec<ActionList<P>>>,
    next_seq: TxnSeq,
    /// Running statistics for the bottleneck/freshness experiments.
    stats: SpaStats,
}

/// Counters exposed for the experiments of §7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaStats {
    pub rels_received: u64,
    pub actions_received: u64,
    pub txns_emitted: u64,
    pub rows_purged: u64,
    /// High-water mark of live VUT rows (merge-process memory pressure).
    pub max_live_rows: usize,
}

impl<P: Clone> Spa<P> {
    /// Create an SPA merge engine for the given set of view managers.
    pub fn new(views: impl IntoIterator<Item = ViewId>) -> Self {
        Spa {
            vut: Vut::new(views),
            max_rel: UpdateId::ZERO,
            pending: BTreeMap::new(),
            next_seq: TxnSeq(1),
            stats: SpaStats::default(),
        }
    }

    pub fn vut(&self) -> &Vut<P> {
        &self.vut
    }

    /// Mutable VUT access for the durability hooks (paint-event sink).
    pub fn vut_mut(&mut self) -> &mut Vut<P> {
        &mut self.vut
    }

    /// Capture the full engine state for a durability checkpoint.
    pub fn snapshot(&self) -> SpaSnapshot<P> {
        SpaSnapshot {
            vut: self.vut.snapshot(),
            max_rel: self.max_rel,
            pending: self.pending.clone(),
            next_seq: self.next_seq,
            stats: self.stats,
        }
    }

    /// Rebuild an engine from a checkpoint snapshot.
    pub fn from_snapshot(s: SpaSnapshot<P>) -> Self {
        Spa {
            vut: Vut::from_snapshot(s.vut),
            max_rel: s.max_rel,
            pending: s.pending,
            next_seq: s.next_seq,
            stats: s.stats,
        }
    }

    /// Register a new view column on the fly (§1.2); rows for updates
    /// numbered so far stay black for it.
    pub fn add_view(&mut self, v: ViewId) {
        self.vut.add_view(v);
    }

    pub fn stats(&self) -> SpaStats {
        self.stats
    }

    /// True when every received AL has been applied and no row is waiting.
    pub fn is_quiescent(&self) -> bool {
        self.vut.is_empty() && self.pending.is_empty()
    }

    /// Handle receipt of `REL_i` from the integrator. RELs must arrive in
    /// FIFO order (`i == previous + 1`); every update gets a REL, possibly
    /// empty.
    pub fn on_rel(
        &mut self,
        i: UpdateId,
        relevant: BTreeSet<ViewId>,
    ) -> Result<Vec<WarehouseTxn<P>>, MergeError> {
        if i != self.max_rel.next() {
            return Err(MergeError::NonSequentialRel {
                expected: self.max_rel.next(),
                got: i,
            });
        }
        for v in &relevant {
            if !self.vut.has_view(*v) {
                return Err(MergeError::UnknownView(*v));
            }
        }
        self.stats.rels_received += 1;
        self.max_rel = i;
        self.vut.insert_row(i, &relevant);
        self.stats.max_live_rows = self.stats.max_live_rows.max(self.vut.live_rows());

        let mut out = Vec::new();
        // A row relevant to no view can be retired immediately.
        self.process_row(i, &mut out)?;
        // Process any ALs that were waiting for this REL.
        if let Some(als) = self.pending.remove(&i) {
            for al in als {
                self.process_action(al, &mut out)?;
            }
        }
        Ok(out)
    }

    /// Handle receipt of `AL^x_i` from view manager `x`. ALs for updates
    /// whose `REL` has not arrived are buffered *before* view validation:
    /// with dynamic installation (§1.2) the column may be announced on
    /// the integrator FIFO between now and that REL.
    pub fn on_action(&mut self, al: ActionList<P>) -> Result<Vec<WarehouseTxn<P>>, MergeError> {
        if al.last <= self.max_rel && !self.vut.has_view(al.view) {
            return Err(MergeError::UnknownView(al.view));
        }
        if al.first != al.last {
            return Err(MergeError::BatchedActionInSpa {
                view: al.view,
                first: al.first,
                last: al.last,
            });
        }
        self.stats.actions_received += 1;
        let mut out = Vec::new();
        if al.last > self.max_rel {
            // REL_i has not arrived yet; hold the AL (§4: "the merge
            // process needs to delay the processing of AL^x_i until after
            // REL_i arrives").
            self.pending.entry(al.last).or_default().push(al);
        } else {
            self.process_action(al, &mut out)?;
        }
        Ok(out)
    }

    /// `ProcessAction(AL^x_i)`: mark red, then try the row.
    fn process_action(
        &mut self,
        al: ActionList<P>,
        out: &mut Vec<WarehouseTxn<P>>,
    ) -> Result<(), MergeError> {
        let (i, x) = (al.last, al.view);
        if !self.vut.has_view(x) {
            return Err(MergeError::UnknownView(x));
        }
        match self.vut.color(i, x) {
            Some(Color::White) => {}
            Some(Color::Red) => {
                return Err(MergeError::UnexpectedAction {
                    view: x,
                    update: i,
                    found: "red (duplicate AL)",
                })
            }
            Some(Color::Gray) => {
                return Err(MergeError::UnexpectedAction {
                    view: x,
                    update: i,
                    found: "gray (already applied)",
                })
            }
            Some(Color::Black) | None => {
                return Err(MergeError::UnexpectedAction {
                    view: x,
                    update: i,
                    found: "black/missing (update irrelevant to view)",
                })
            }
        }
        self.vut.store_action(al);
        self.vut.set_red(i, x, i)?;
        self.process_row(i, out)?;
        Ok(())
    }

    /// `ProcessRow(i)` (Algorithm 1): apply the row if permitted, then
    /// recursively check rows unblocked by the application.
    fn process_row(
        &mut self,
        i: UpdateId,
        out: &mut Vec<WarehouseTxn<P>>,
    ) -> Result<(), MergeError> {
        if !self.vut.has_row(i) {
            return Ok(()); // already applied and purged
        }
        // Line 1: some AL still missing.
        if self.vut.row_has_white(i) {
            return Ok(());
        }
        // Line 2: an earlier AL from the same manager is still unapplied.
        let reds = self.vut.reds_in_row(i);
        for &x in &reds {
            if !self.vut.reds_before(i, x).is_empty() {
                return Ok(());
            }
        }
        // Line 3: red → gray.
        for &x in &reds {
            self.vut.set_gray(i, x)?;
        }
        // Line 4: emit all of WT_i as a single warehouse transaction.
        let actions = self.vut.take_wt(i);
        debug_assert_eq!(actions.len(), reds.len(), "one AL per red entry");
        if !actions.is_empty() {
            let views: BTreeSet<ViewId> = actions.iter().map(|a| a.view).collect();
            let seq = self.next_seq;
            self.next_seq = seq.next();
            self.stats.txns_emitted += 1;
            out.push(WarehouseTxn {
                seq,
                rows: vec![i],
                actions,
                views,
                frontier: i,
            });
        }
        // Line 5: collect follow-up rows before purging.
        let mut follow: Vec<UpdateId> = reds
            .iter()
            .filter_map(|&x| self.vut.next_red(i, x))
            .collect();
        follow.sort_unstable();
        follow.dedup();
        // Line 6: purge row i.
        self.vut.purge_row(i);
        self.stats.rows_purged += 1;
        for j in follow {
            self.process_row(j, out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<ViewId> {
        ids.iter().map(|&v| ViewId(v)).collect()
    }

    fn al(view: u32, update: u64) -> ActionList<&'static str> {
        ActionList::single(ViewId(view), UpdateId(update), "ops")
    }

    /// Example 2 + the basic hold: AL2_1 arrives but AL1_1 is missing →
    /// nothing released until AL1_1 arrives, then both go in one txn.
    #[test]
    fn holds_until_row_complete() {
        let mut spa = Spa::new([ViewId(1), ViewId(2), ViewId(3)]);
        assert!(spa.on_rel(UpdateId(1), set(&[1, 2])).unwrap().is_empty());
        assert!(
            spa.on_action(al(2, 1)).unwrap().is_empty(),
            "V1 still white"
        );
        let txns = spa.on_action(al(1, 1)).unwrap();
        assert_eq!(txns.len(), 1);
        let t = &txns[0];
        assert_eq!(t.rows, vec![UpdateId(1)]);
        assert_eq!(t.views, set(&[1, 2]));
        assert_eq!(t.actions.len(), 2);
        assert_eq!(t.frontier, UpdateId(1));
        assert!(spa.is_quiescent());
    }

    /// Independent rows release out of order (Example 3, time t5: row 2 on
    /// V3 applies before row 1).
    #[test]
    fn disjoint_later_row_releases_first() {
        let mut spa = Spa::new([ViewId(1), ViewId(2), ViewId(3)]);
        spa.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        spa.on_action(al(2, 1)).unwrap();
        spa.on_rel(UpdateId(2), set(&[3])).unwrap();
        let txns = spa.on_action(al(3, 2)).unwrap();
        assert_eq!(txns.len(), 1, "row 2 independent of row 1");
        assert_eq!(txns[0].rows, vec![UpdateId(2)]);
        assert!(!spa.is_quiescent(), "row 1 still waiting");
    }

    /// Line 2: same-manager order. AL for U3 cannot apply before AL for U1
    /// when both affect V2.
    #[test]
    fn same_manager_order_enforced() {
        let mut spa = Spa::new([ViewId(1), ViewId(2)]);
        spa.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        spa.on_rel(UpdateId(2), set(&[2])).unwrap();
        spa.on_action(al(2, 1)).unwrap();
        // AL2_2 arrives; row 2 has no whites but row 1 has red in V2.
        let txns = spa.on_action(al(2, 2)).unwrap();
        assert!(txns.is_empty(), "blocked by earlier red in same column");
        // AL1_1 completes row 1 → row 1 applies, then row 2 cascades.
        let txns = spa.on_action(al(1, 1)).unwrap();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].rows, vec![UpdateId(1)]);
        assert_eq!(txns[1].rows, vec![UpdateId(2)]);
        assert!(txns[1].seq > txns[0].seq);
        assert!(spa.is_quiescent());
    }

    /// AL arriving before its REL is buffered (§4: "may receive a list
    /// AL^x_j without having received REL_j").
    #[test]
    fn action_before_rel_buffered() {
        let mut spa = Spa::new([ViewId(1)]);
        spa.on_rel(UpdateId(1), set(&[1])).unwrap();
        spa.on_action(al(1, 1)).unwrap();
        // AL for U2 arrives before REL_2
        assert!(spa.on_action(al(1, 2)).unwrap().is_empty());
        let txns = spa.on_rel(UpdateId(2), set(&[1])).unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].rows, vec![UpdateId(2)]);
    }

    /// Full Example 3 message sequence; the released transactions must be
    /// WT2 (V3), WT1 (V1,V2), WT3 (V2) in that order.
    #[test]
    fn paper_example_3_sequence() {
        // Views: V1 = R⋈S, V2 = S⋈T, V3 = Q
        // Updates: U1 on S (→V1,V2), U2 on Q (→V3), U3 on T (→V2)
        let mut spa = Spa::new([ViewId(1), ViewId(2), ViewId(3)]);
        let mut released: Vec<WarehouseTxn<&str>> = Vec::new();
        released.extend(spa.on_rel(UpdateId(1), set(&[1, 2])).unwrap());
        released.extend(spa.on_action(al(2, 1)).unwrap());
        released.extend(spa.on_rel(UpdateId(2), set(&[3])).unwrap());
        released.extend(spa.on_rel(UpdateId(3), set(&[2])).unwrap());
        released.extend(spa.on_action(al(3, 2)).unwrap()); // t5: WT2 applied
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].rows, vec![UpdateId(2)]);
        released.extend(spa.on_action(al(2, 3)).unwrap()); // t7: still blocked
        assert_eq!(released.len(), 1);
        released.extend(spa.on_action(al(1, 1)).unwrap()); // t8-t11: WT1 then WT3
        assert_eq!(released.len(), 3);
        assert_eq!(released[1].rows, vec![UpdateId(1)]);
        assert_eq!(released[1].views, set(&[1, 2]));
        assert_eq!(released[2].rows, vec![UpdateId(3)]);
        assert_eq!(released[2].views, set(&[2]));
        assert!(spa.is_quiescent());
    }

    #[test]
    fn empty_rel_row_purges_immediately() {
        let mut spa: Spa<()> = Spa::new([ViewId(1)]);
        let txns = spa.on_rel(UpdateId(1), set(&[])).unwrap();
        assert!(txns.is_empty());
        assert!(spa.is_quiescent());
    }

    #[test]
    fn rejects_out_of_order_rel() {
        let mut spa: Spa<()> = Spa::new([ViewId(1)]);
        assert!(matches!(
            spa.on_rel(UpdateId(2), set(&[1])),
            Err(MergeError::NonSequentialRel { .. })
        ));
    }

    #[test]
    fn rejects_batched_al() {
        let mut spa: Spa<()> = Spa::new([ViewId(1)]);
        spa.on_rel(UpdateId(1), set(&[1])).unwrap();
        spa.on_rel(UpdateId(2), set(&[1])).unwrap();
        let batched = ActionList::batch(ViewId(1), UpdateId(1), UpdateId(2), ());
        assert!(matches!(
            spa.on_action(batched),
            Err(MergeError::BatchedActionInSpa { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_and_irrelevant_al() {
        let mut spa = Spa::new([ViewId(1), ViewId(2)]);
        spa.on_rel(UpdateId(1), set(&[1])).unwrap();
        // irrelevant view (entry black)
        assert!(matches!(
            spa.on_action(al(2, 1)),
            Err(MergeError::UnexpectedAction { .. })
        ));
        // unknown view id
        assert!(matches!(
            spa.on_action(al(9, 1)),
            Err(MergeError::UnknownView(_))
        ));
    }

    #[test]
    fn empty_payload_al_still_required_and_counted() {
        // Empty ALs are sent and complete the row like any other.
        let mut spa = Spa::new([ViewId(1), ViewId(2)]);
        spa.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        spa.on_action(ActionList::single(ViewId(1), UpdateId(1), ""))
            .unwrap();
        let txns = spa
            .on_action(ActionList::single(ViewId(2), UpdateId(1), ""))
            .unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].actions.len(), 2);
    }

    #[test]
    fn stats_track_progress() {
        let mut spa = Spa::new([ViewId(1)]);
        spa.on_rel(UpdateId(1), set(&[1])).unwrap();
        spa.on_action(al(1, 1)).unwrap();
        let s = spa.stats();
        assert_eq!(s.rels_received, 1);
        assert_eq!(s.actions_received, 1);
        assert_eq!(s.txns_emitted, 1);
        assert!(s.max_live_rows >= 1);
    }

    /// Promptness: a row releases in the exact event that completes it,
    /// and never before.
    #[test]
    fn promptness_release_at_enabling_event() {
        let mut spa = Spa::new([ViewId(1), ViewId(2)]);
        spa.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        // Every prefix of the enabling sequence releases nothing…
        assert!(spa.on_action(al(1, 1)).unwrap().is_empty());
        // …and the completing event releases immediately.
        assert_eq!(spa.on_action(al(2, 1)).unwrap().len(), 1);
    }

    /// Deep cascade: applying row 1 unblocks rows 2 and 3 transitively
    /// through overlapping view chains (U1→{A,B}, U2→{B,C}, U3→{C}).
    /// Per-manager FIFO is respected: each VM's ALs arrive in order.
    #[test]
    fn cascading_chain() {
        let (a, b, c) = (1u32, 2u32, 3u32);
        let mut spa = Spa::new([ViewId(a), ViewId(b), ViewId(c)]);
        spa.on_rel(UpdateId(1), set(&[a, b])).unwrap();
        spa.on_rel(UpdateId(2), set(&[b, c])).unwrap();
        spa.on_rel(UpdateId(3), set(&[c])).unwrap();
        // VM B in order, VM C in order; row 2 blocked by row 1 (column B),
        // row 3 blocked by row 2 (column C).
        assert!(spa.on_action(al(b, 1)).unwrap().is_empty());
        assert!(spa.on_action(al(b, 2)).unwrap().is_empty());
        assert!(spa.on_action(al(c, 2)).unwrap().is_empty());
        assert!(spa.on_action(al(c, 3)).unwrap().is_empty());
        // The single missing AL releases the whole chain in order.
        let txns = spa.on_action(al(a, 1)).unwrap();
        assert_eq!(txns.len(), 3);
        let rows: Vec<u64> = txns.iter().map(|t| t.rows[0].0).collect();
        assert_eq!(rows, vec![1, 2, 3], "applied in update order");
        assert!(spa.is_quiescent());
    }
}
