//! Warehouse transaction submission control (§4.3).
//!
//! The merge process may not let two *dependent* warehouse transactions
//! (`WTj` depends on `WTi` iff `j > i` and `VS(WTj) ∩ VS(WTi) ≠ ∅`)
//! commit out of submission order. The paper sketches three strategies,
//! all implemented here:
//!
//! * [`CommitPolicy::Sequential`] — submit one transaction at a time,
//!   waiting for each commit;
//! * [`CommitPolicy::DependencyAware`] — hold a transaction only while a
//!   dependency is uncommitted; independent transactions proceed in
//!   parallel;
//! * [`CommitPolicy::Batched`] — coalesce up to `max_batch` transactions
//!   into one batched warehouse transaction (`BWT`). Batching reduces
//!   per-transaction overhead but downgrades MVC completeness to strong
//!   consistency (each BWT may advance the warehouse by several states)
//!   and may create dependencies between previously independent WTs.

use crate::action::WarehouseTxn;
use crate::ids::{TxnSeq, ViewId};
use crate::snapshot::SchedulerSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Strategy for releasing warehouse transactions (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitPolicy {
    /// No commit-order control at all: every transaction is released the
    /// moment it is submitted and the warehouse DBMS decides commit order.
    /// This is the configuration §4.3 warns about — dependent transactions
    /// may commit out of order and corrupt view states. Kept for the
    /// fault-injection experiments and for convergent (pass-through)
    /// deployments where intermediate states carry no guarantee anyway.
    Immediate,
    /// Only one transaction in flight at a time, strictly in order.
    Sequential,
    /// Hold a transaction only behind uncommitted transactions whose view
    /// sets intersect its own.
    DependencyAware,
    /// Coalesce up to `max_batch` submitted transactions into one BWT;
    /// BWTs themselves are sequenced by the dependency rule.
    Batched { max_batch: usize },
}

/// The commit scheduler sitting between a merge engine and the warehouse.
#[derive(Debug, Clone)]
pub struct CommitScheduler<P> {
    policy: CommitPolicy,
    /// Submitted but not yet released, in submission order.
    queue: VecDeque<WarehouseTxn<P>>,
    /// A coalesced BWT blocked behind an in-flight dependency (Batched
    /// policy only); must release before anything newer.
    held_bwt: Option<WarehouseTxn<P>>,
    /// Released to the warehouse, not yet reported committed.
    inflight: BTreeMap<TxnSeq, BTreeSet<ViewId>>,
    stats: CommitStats,
}

/// Counters for the batching/commit experiments (X3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitStats {
    pub submitted: u64,
    pub released: u64,
    pub committed: u64,
    /// WTs folded into released BWTs (Batched policy only).
    pub coalesced: u64,
    pub max_inflight: usize,
    pub max_queue: usize,
}

impl<P: Clone> CommitScheduler<P> {
    pub fn new(policy: CommitPolicy) -> Self {
        if let CommitPolicy::Batched { max_batch } = policy {
            assert!(max_batch >= 1, "batch size must be at least 1");
        }
        CommitScheduler {
            policy,
            queue: VecDeque::new(),
            held_bwt: None,
            inflight: BTreeMap::new(),
            stats: CommitStats::default(),
        }
    }

    pub fn policy(&self) -> CommitPolicy {
        self.policy
    }

    pub fn stats(&self) -> CommitStats {
        self.stats
    }

    /// All work drained: nothing queued, nothing awaiting commit.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.held_bwt.is_none() && self.inflight.is_empty()
    }

    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Capture the full scheduler state for a durability checkpoint.
    pub fn snapshot(&self) -> SchedulerSnapshot<P> {
        SchedulerSnapshot {
            policy: self.policy,
            queue: self.queue.iter().cloned().collect(),
            held_bwt: self.held_bwt.clone(),
            inflight: self.inflight.clone(),
            stats: self.stats,
        }
    }

    /// Rebuild a scheduler from a checkpoint snapshot.
    pub fn from_snapshot(s: SchedulerSnapshot<P>) -> Self {
        CommitScheduler {
            policy: s.policy,
            queue: s.queue.into(),
            held_bwt: s.held_bwt,
            inflight: s.inflight,
            stats: s.stats,
        }
    }

    /// Submit a transaction from the merge engine; returns transactions
    /// now cleared for the warehouse.
    pub fn submit(&mut self, txn: WarehouseTxn<P>) -> Vec<WarehouseTxn<P>> {
        debug_assert!(
            self.queue.back().map(|t| t.seq < txn.seq).unwrap_or(true),
            "submissions must be in seq order"
        );
        self.stats.submitted += 1;
        self.queue.push_back(txn);
        self.stats.max_queue = self.stats.max_queue.max(self.queue.len());
        self.release_ready(false)
    }

    /// The warehouse reports a released transaction committed; returns
    /// transactions newly cleared.
    pub fn on_committed(&mut self, seq: TxnSeq) -> Vec<WarehouseTxn<P>> {
        let removed = self.inflight.remove(&seq);
        debug_assert!(removed.is_some(), "commit for unknown txn {seq}");
        self.stats.committed += 1;
        self.release_ready(false)
    }

    /// Force out any partially filled batch (end of run / timer).
    pub fn flush(&mut self) -> Vec<WarehouseTxn<P>> {
        self.release_ready(true)
    }

    fn release_ready(&mut self, flush: bool) -> Vec<WarehouseTxn<P>> {
        match self.policy {
            CommitPolicy::Immediate => {
                let mut out = Vec::with_capacity(self.queue.len());
                while let Some(t) = self.queue.pop_front() {
                    out.push(self.track(t));
                }
                out
            }
            CommitPolicy::Sequential => self.release_sequential(),
            CommitPolicy::DependencyAware => self.release_dependency_aware(),
            CommitPolicy::Batched { max_batch } => self.release_batched(max_batch, flush),
        }
    }

    fn release_sequential(&mut self) -> Vec<WarehouseTxn<P>> {
        let mut out = Vec::new();
        // Release exactly one transaction when nothing is in flight.
        if self.inflight.is_empty() {
            if let Some(t) = self.queue.pop_front() {
                out.push(self.track(t));
            }
        }
        out
    }

    fn release_dependency_aware(&mut self) -> Vec<WarehouseTxn<P>> {
        let mut out = Vec::new();
        // Views blocked by in-flight transactions…
        let mut blocked: BTreeSet<ViewId> = self.inflight.values().flatten().copied().collect();
        // …scan the queue in order; a transaction releases when none of
        // its views is blocked. Its views then block later queue entries,
        // keeping dependent transactions in submission order.
        let mut remaining: VecDeque<WarehouseTxn<P>> = VecDeque::new();
        while let Some(t) = self.queue.pop_front() {
            let dependent = t.views.iter().any(|v| blocked.contains(v));
            if dependent {
                blocked.extend(t.views.iter().copied());
                remaining.push_back(t);
            } else {
                blocked.extend(t.views.iter().copied());
                out.push(self.track(t));
            }
        }
        self.queue = remaining;
        out
    }

    fn release_batched(&mut self, max_batch: usize, flush: bool) -> Vec<WarehouseTxn<P>> {
        let mut out = Vec::new();
        loop {
            // A previously coalesced BWT must go out before anything newer.
            let bwt = match self.held_bwt.take() {
                Some(b) => b,
                None => {
                    if self.queue.is_empty() {
                        break;
                    }
                    let full = self.queue.len() >= max_batch;
                    if !full && !flush {
                        break;
                    }
                    // Build one BWT from up to max_batch queued WTs.
                    let take = self.queue.len().min(max_batch);
                    let mut members: Vec<WarehouseTxn<P>> = Vec::with_capacity(take);
                    for _ in 0..take {
                        members.push(self.queue.pop_front().expect("checked non-empty"));
                    }
                    self.stats.coalesced += (take as u64).saturating_sub(1);
                    coalesce(members)
                }
            };
            // BWTs are sequenced conservatively: a BWT waits while any
            // in-flight transaction shares a view with it.
            let blocked: BTreeSet<ViewId> = self.inflight.values().flatten().copied().collect();
            if bwt.views.iter().any(|v| blocked.contains(v)) {
                self.held_bwt = Some(bwt);
                break;
            }
            out.push(self.track(bwt));
        }
        out
    }

    fn track(&mut self, t: WarehouseTxn<P>) -> WarehouseTxn<P> {
        self.inflight.insert(t.seq, t.views.clone());
        self.stats.released += 1;
        self.stats.max_inflight = self.stats.max_inflight.max(self.inflight.len());
        t
    }
}

/// Merge several WTs (in submission order) into one batched warehouse
/// transaction. Action order within the batch preserves submission order,
/// so if `WTj` depends on `WTi`, `WTi`'s actions precede `WTj`'s (§4.3).
fn coalesce<P>(members: Vec<WarehouseTxn<P>>) -> WarehouseTxn<P> {
    debug_assert!(!members.is_empty());
    let seq = members[0].seq;
    let mut rows = Vec::new();
    let mut actions = Vec::new();
    let mut views = BTreeSet::new();
    let mut frontier = members[0].frontier;
    for m in members {
        rows.extend(m.rows);
        actions.extend(m.actions);
        views.extend(m.views);
        frontier = frontier.max(m.frontier);
    }
    rows.sort_unstable();
    rows.dedup();
    WarehouseTxn {
        seq,
        rows,
        actions,
        views,
        frontier,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::UpdateId;

    fn wt(seq: u64, views: &[u32]) -> WarehouseTxn<&'static str> {
        WarehouseTxn {
            seq: TxnSeq(seq),
            rows: vec![UpdateId(seq)],
            actions: vec![],
            views: views.iter().map(|&v| ViewId(v)).collect(),
            frontier: UpdateId(seq),
        }
    }

    #[test]
    fn sequential_one_at_a_time() {
        let mut s = CommitScheduler::new(CommitPolicy::Sequential);
        let r1 = s.submit(wt(1, &[1]));
        assert_eq!(r1.len(), 1);
        let r2 = s.submit(wt(2, &[2]));
        assert!(r2.is_empty(), "held until WT1 commits even though disjoint");
        let r3 = s.on_committed(TxnSeq(1));
        assert_eq!(r3.len(), 1);
        assert_eq!(r3[0].seq, TxnSeq(2));
        s.on_committed(TxnSeq(2));
        assert!(s.is_idle());
    }

    #[test]
    fn dependency_aware_releases_independent() {
        let mut s = CommitScheduler::new(CommitPolicy::DependencyAware);
        assert_eq!(s.submit(wt(1, &[1, 2])).len(), 1);
        // shares V2 → held
        assert!(s.submit(wt(2, &[2, 3])).is_empty());
        // disjoint from both → released immediately
        assert_eq!(s.submit(wt(3, &[4])).len(), 1);
        // WT4 depends on WT2 (queued) via V3 → held even though WT2 not in flight
        assert!(s.submit(wt(4, &[3])).is_empty());
        let r = s.on_committed(TxnSeq(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].seq, TxnSeq(2));
        let r = s.on_committed(TxnSeq(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].seq, TxnSeq(4));
        s.on_committed(TxnSeq(3));
        s.on_committed(TxnSeq(4));
        assert!(s.is_idle());
    }

    #[test]
    fn dependency_order_preserved_among_dependents() {
        let mut s = CommitScheduler::new(CommitPolicy::DependencyAware);
        s.submit(wt(1, &[1]));
        assert!(s.submit(wt(2, &[1])).is_empty());
        assert!(s.submit(wt(3, &[1])).is_empty());
        let r = s.on_committed(TxnSeq(1));
        assert_eq!(r.len(), 1, "only the next dependent releases");
        assert_eq!(r[0].seq, TxnSeq(2));
    }

    #[test]
    fn batched_coalesces() {
        let mut s = CommitScheduler::new(CommitPolicy::Batched { max_batch: 3 });
        assert!(s.submit(wt(1, &[1])).is_empty());
        assert!(s.submit(wt(2, &[2])).is_empty());
        let r = s.submit(wt(3, &[1]));
        assert_eq!(r.len(), 1);
        let bwt = &r[0];
        assert_eq!(bwt.seq, TxnSeq(1), "BWT takes first member's seq");
        assert_eq!(bwt.views.len(), 2);
        assert_eq!(bwt.frontier, UpdateId(3));
        assert_eq!(
            bwt.rows,
            vec![UpdateId(1), UpdateId(2), UpdateId(3)],
            "rows merged in order"
        );
        assert_eq!(s.stats().coalesced, 2);
    }

    #[test]
    fn batched_flush_releases_partial() {
        let mut s = CommitScheduler::new(CommitPolicy::Batched { max_batch: 10 });
        s.submit(wt(1, &[1]));
        s.submit(wt(2, &[2]));
        let r = s.flush();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].rows.len(), 2);
    }

    #[test]
    fn batched_bwt_dependency_blocks() {
        let mut s = CommitScheduler::new(CommitPolicy::Batched { max_batch: 2 });
        let r = s.submit(wt(1, &[1]));
        assert!(r.is_empty());
        let r = s.submit(wt(2, &[2]));
        assert_eq!(r.len(), 1, "first BWT {{1,2}} released");
        s.submit(wt(3, &[2]));
        let r = s.submit(wt(4, &[5]));
        // second BWT shares V2 with in-flight first BWT → blocked
        assert!(r.is_empty());
        let r = s.on_committed(TxnSeq(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].seq, TxnSeq(3));
    }

    #[test]
    fn stats_counters() {
        let mut s = CommitScheduler::new(CommitPolicy::Sequential);
        s.submit(wt(1, &[1]));
        s.submit(wt(2, &[1]));
        s.on_committed(TxnSeq(1));
        s.on_committed(TxnSeq(2));
        let st = s.stats();
        assert_eq!(st.submitted, 2);
        assert_eq!(st.released, 2);
        assert_eq!(st.committed, 2);
        assert_eq!(st.max_inflight, 1);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let _: CommitScheduler<()> = CommitScheduler::new(CommitPolicy::Batched { max_batch: 0 });
    }
}
