//! The merge process (§1.2, Figure 1): a coordination engine (SPA, PA or
//! pass-through) composed with a commit scheduler (§4.3).
//!
//! This is the component a deployment instantiates once per merge group
//! (§6.1). It is a pure state machine: feed it `REL` sets, action lists
//! and warehouse commit notifications; it returns the warehouse
//! transactions cleared for submission. All I/O lives in the runtime
//! layer, which keeps the algorithms testable under every interleaving.

use crate::action::{ActionList, WarehouseTxn};
use crate::commit::{CommitPolicy, CommitScheduler, CommitStats};
use crate::consistency::{ConsistencyLevel, MergeAlgorithm};
use crate::error::MergeError;
use crate::ids::{TxnSeq, UpdateId, ViewId};
use crate::pa::{Pa, PaStats};
use crate::snapshot::{EngineSnapshot, MergeSnapshot, PaintEvent};
use crate::spa::{Spa, SpaStats};
use std::collections::BTreeSet;

/// Coordination engine variants.
#[derive(Debug, Clone)]
enum Engine<P> {
    Spa(Spa<P>),
    Pa(Pa<P>),
    /// §6.3 convergent mode: forward every AL as its own transaction.
    PassThrough {
        next_seq: TxnSeq,
        stats: MergeStats,
    },
}

/// Aggregated engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    pub rels_received: u64,
    pub actions_received: u64,
    pub txns_emitted: u64,
    pub max_live_rows: usize,
    pub batched_actions: u64,
    pub rows_applied: u64,
}

impl From<SpaStats> for MergeStats {
    fn from(s: SpaStats) -> Self {
        MergeStats {
            rels_received: s.rels_received,
            actions_received: s.actions_received,
            txns_emitted: s.txns_emitted,
            max_live_rows: s.max_live_rows,
            batched_actions: 0,
            rows_applied: s.rows_purged,
        }
    }
}

impl From<PaStats> for MergeStats {
    fn from(s: PaStats) -> Self {
        MergeStats {
            rels_received: s.rels_received,
            actions_received: s.actions_received,
            txns_emitted: s.txns_emitted,
            max_live_rows: s.max_live_rows,
            batched_actions: s.batched_actions,
            rows_applied: s.rows_applied,
        }
    }
}

/// A merge process: engine + commit scheduler.
#[derive(Debug, Clone)]
pub struct MergeProcess<P> {
    engine: Engine<P>,
    scheduler: CommitScheduler<P>,
    algorithm: MergeAlgorithm,
}

impl<P: Clone> MergeProcess<P> {
    /// Build a merge process running `algorithm` over the given views with
    /// the given commit policy.
    pub fn new(
        algorithm: MergeAlgorithm,
        views: impl IntoIterator<Item = ViewId>,
        policy: CommitPolicy,
    ) -> Self {
        let engine = match algorithm {
            MergeAlgorithm::Spa => Engine::Spa(Spa::new(views)),
            MergeAlgorithm::Pa => Engine::Pa(Pa::new(views)),
            MergeAlgorithm::PassThrough => Engine::PassThrough {
                next_seq: TxnSeq(1),
                stats: MergeStats::default(),
            },
        };
        MergeProcess {
            engine,
            scheduler: CommitScheduler::new(policy),
            algorithm,
        }
    }

    /// Pick the algorithm from the weakest view-manager consistency level
    /// (§6.3) and build the process.
    pub fn for_managers(
        levels: impl IntoIterator<Item = (ViewId, ConsistencyLevel)>,
        policy: CommitPolicy,
    ) -> Self {
        let levels: Vec<(ViewId, ConsistencyLevel)> = levels.into_iter().collect();
        let weakest = ConsistencyLevel::weakest_of(levels.iter().map(|(_, l)| *l));
        let algorithm = MergeAlgorithm::for_weakest(weakest);
        MergeProcess::new(algorithm, levels.into_iter().map(|(v, _)| v), policy)
    }

    pub fn algorithm(&self) -> MergeAlgorithm {
        self.algorithm
    }

    /// Combined MVC guarantee of engine and commit policy: batching
    /// commits weakens completeness to strong consistency (§4.3).
    pub fn guarantees(&self) -> ConsistencyLevel {
        let engine_level = self.algorithm.guarantees();
        match self.scheduler.policy() {
            CommitPolicy::Batched { .. } => engine_level.weakest(ConsistencyLevel::Strong),
            _ => engine_level,
        }
    }

    pub fn stats(&self) -> MergeStats {
        match &self.engine {
            Engine::Spa(s) => s.stats().into(),
            Engine::Pa(p) => p.stats().into(),
            Engine::PassThrough { stats, .. } => *stats,
        }
    }

    pub fn commit_stats(&self) -> CommitStats {
        self.scheduler.stats()
    }

    /// Nothing held anywhere: VUT empty, queue empty, nothing in flight.
    pub fn is_quiescent(&self) -> bool {
        let engine_done = match &self.engine {
            Engine::Spa(s) => s.is_quiescent(),
            Engine::Pa(p) => p.is_quiescent(),
            Engine::PassThrough { .. } => true,
        };
        engine_done && self.scheduler.is_idle()
    }

    /// Live VUT rows (pass-through has none).
    pub fn live_rows(&self) -> usize {
        match &self.engine {
            Engine::Spa(s) => s.vut().live_rows(),
            Engine::Pa(p) => p.vut().live_rows(),
            Engine::PassThrough { .. } => 0,
        }
    }

    /// Add a view on the fly (§1.2): the VUT gains a column; updates
    /// numbered before the install row are black for it. No-op for
    /// pass-through mode.
    pub fn add_view(&mut self, v: ViewId) {
        match &mut self.engine {
            Engine::Spa(s) => s.add_view(v),
            Engine::Pa(p) => p.add_view(v),
            Engine::PassThrough { .. } => {}
        }
    }

    /// Receive `REL_i` from the integrator.
    pub fn on_rel(
        &mut self,
        i: UpdateId,
        relevant: BTreeSet<ViewId>,
    ) -> Result<Vec<WarehouseTxn<P>>, MergeError> {
        let emitted = match &mut self.engine {
            Engine::Spa(s) => s.on_rel(i, relevant)?,
            Engine::Pa(p) => p.on_rel(i, relevant)?,
            Engine::PassThrough { stats, .. } => {
                stats.rels_received += 1;
                Vec::new()
            }
        };
        Ok(self.schedule(emitted))
    }

    /// Receive an action list from a view manager.
    pub fn on_action(&mut self, al: ActionList<P>) -> Result<Vec<WarehouseTxn<P>>, MergeError> {
        let emitted = match &mut self.engine {
            Engine::Spa(s) => s.on_action(al)?,
            Engine::Pa(p) => p.on_action(al)?,
            Engine::PassThrough { next_seq, stats } => {
                stats.actions_received += 1;
                stats.txns_emitted += 1;
                if al.is_batched() {
                    stats.batched_actions += 1;
                }
                stats.rows_applied += al.last.0 - al.first.0 + 1;
                let seq = *next_seq;
                *next_seq = seq.next();
                vec![WarehouseTxn {
                    seq,
                    rows: (al.first.0..=al.last.0).map(UpdateId).collect(),
                    views: BTreeSet::from([al.view]),
                    frontier: al.last,
                    actions: vec![al],
                }]
            }
        };
        Ok(self.schedule(emitted))
    }

    /// The warehouse reports a transaction committed.
    pub fn on_committed(&mut self, seq: TxnSeq) -> Vec<WarehouseTxn<P>> {
        self.scheduler.on_committed(seq)
    }

    /// Force out any batched remainder (end of run).
    pub fn flush(&mut self) -> Vec<WarehouseTxn<P>> {
        self.scheduler.flush()
    }

    /// Turn on the VUT paint-event sink for the durability WAL. No-op in
    /// pass-through mode (no VUT, no paint transitions).
    pub fn enable_paint_events(&mut self) {
        match &mut self.engine {
            Engine::Spa(s) => s.vut_mut().enable_events(),
            Engine::Pa(p) => p.vut_mut().enable_events(),
            Engine::PassThrough { .. } => {}
        }
    }

    /// Drain accumulated paint transitions (empty unless enabled).
    pub fn take_paint_events(&mut self) -> Vec<PaintEvent> {
        match &mut self.engine {
            Engine::Spa(s) => s.vut_mut().take_events(),
            Engine::Pa(p) => p.vut_mut().take_events(),
            Engine::PassThrough { .. } => Vec::new(),
        }
    }

    /// Capture the whole merge process (engine + scheduler) for a
    /// durability checkpoint.
    pub fn snapshot(&self) -> MergeSnapshot<P> {
        let engine = match &self.engine {
            Engine::Spa(s) => EngineSnapshot::Spa(s.snapshot()),
            Engine::Pa(p) => EngineSnapshot::Pa(p.snapshot()),
            Engine::PassThrough { next_seq, stats } => EngineSnapshot::PassThrough {
                next_seq: *next_seq,
                stats: *stats,
            },
        };
        MergeSnapshot {
            algorithm: self.algorithm,
            engine,
            scheduler: self.scheduler.snapshot(),
        }
    }

    /// Rebuild a merge process from a checkpoint snapshot.
    pub fn from_snapshot(s: MergeSnapshot<P>) -> Self {
        let engine = match s.engine {
            EngineSnapshot::Spa(e) => Engine::Spa(Spa::from_snapshot(e)),
            EngineSnapshot::Pa(e) => Engine::Pa(Pa::from_snapshot(e)),
            EngineSnapshot::PassThrough { next_seq, stats } => {
                Engine::PassThrough { next_seq, stats }
            }
        };
        MergeProcess {
            engine,
            scheduler: CommitScheduler::from_snapshot(s.scheduler),
            algorithm: s.algorithm,
        }
    }

    fn schedule(&mut self, emitted: Vec<WarehouseTxn<P>>) -> Vec<WarehouseTxn<P>> {
        let mut out = Vec::new();
        for t in emitted {
            out.extend(self.scheduler.submit(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<ViewId> {
        ids.iter().map(|&v| ViewId(v)).collect()
    }

    fn al(view: u32, update: u64) -> ActionList<&'static str> {
        ActionList::single(ViewId(view), UpdateId(update), "ops")
    }

    #[test]
    fn for_managers_picks_weakest() {
        let mp: MergeProcess<()> = MergeProcess::for_managers(
            [
                (ViewId(1), ConsistencyLevel::Complete),
                (ViewId(2), ConsistencyLevel::Strong),
            ],
            CommitPolicy::Sequential,
        );
        assert_eq!(mp.algorithm(), MergeAlgorithm::Pa);
        assert_eq!(mp.guarantees(), ConsistencyLevel::Strong);

        let mp: MergeProcess<()> = MergeProcess::for_managers(
            [(ViewId(1), ConsistencyLevel::Complete)],
            CommitPolicy::Sequential,
        );
        assert_eq!(mp.algorithm(), MergeAlgorithm::Spa);
        assert_eq!(mp.guarantees(), ConsistencyLevel::Complete);
    }

    #[test]
    fn batched_commits_downgrade_completeness() {
        let mp: MergeProcess<()> = MergeProcess::new(
            MergeAlgorithm::Spa,
            [ViewId(1)],
            CommitPolicy::Batched { max_batch: 4 },
        );
        assert_eq!(mp.guarantees(), ConsistencyLevel::Strong);
    }

    #[test]
    fn end_to_end_spa_sequential() {
        let mut mp = MergeProcess::new(
            MergeAlgorithm::Spa,
            [ViewId(1), ViewId(2)],
            CommitPolicy::Sequential,
        );
        assert!(mp.on_rel(UpdateId(1), set(&[1, 2])).unwrap().is_empty());
        assert!(mp.on_action(al(1, 1)).unwrap().is_empty());
        let released = mp.on_action(al(2, 1)).unwrap();
        assert_eq!(released.len(), 1);
        assert!(!mp.is_quiescent(), "commit outstanding");
        assert!(mp.on_committed(released[0].seq).is_empty());
        assert!(mp.is_quiescent());
    }

    #[test]
    fn sequential_policy_holds_cascade() {
        // U1→{V1,V2}, U2→{V2}: rows complete in one event, scheduler
        // releases them one commit at a time.
        let mut mp = MergeProcess::new(
            MergeAlgorithm::Spa,
            [ViewId(1), ViewId(2)],
            CommitPolicy::Sequential,
        );
        mp.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        mp.on_rel(UpdateId(2), set(&[2])).unwrap();
        mp.on_action(al(2, 1)).unwrap();
        mp.on_action(al(2, 2)).unwrap();
        let released = mp.on_action(al(1, 1)).unwrap();
        // engine emits both rows, scheduler releases only the first
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].rows, vec![UpdateId(1)]);
        let more = mp.on_committed(released[0].seq);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].rows, vec![UpdateId(2)]);
    }

    #[test]
    fn pass_through_forwards_everything() {
        let mut mp = MergeProcess::new(
            MergeAlgorithm::PassThrough,
            [ViewId(1), ViewId(2)],
            CommitPolicy::DependencyAware,
        );
        assert!(mp.on_rel(UpdateId(1), set(&[1, 2])).unwrap().is_empty());
        let r = mp.on_action(al(1, 1)).unwrap();
        assert_eq!(r.len(), 1, "no coordination in convergent mode");
        let r2 = mp.on_action(al(2, 1)).unwrap();
        assert_eq!(r2.len(), 1);
        assert_ne!(r[0].seq, r2[0].seq);
    }

    #[test]
    fn flush_drains_batches() {
        let mut mp = MergeProcess::new(
            MergeAlgorithm::Spa,
            [ViewId(1)],
            CommitPolicy::Batched { max_batch: 100 },
        );
        mp.on_rel(UpdateId(1), set(&[1])).unwrap();
        assert!(mp.on_action(al(1, 1)).unwrap().is_empty(), "batch not full");
        let r = mp.flush();
        assert_eq!(r.len(), 1);
    }
}
