//! Identifier newtypes shared across the MVC machinery.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a source update (or source transaction, §6.2), assigned
/// by the integrator in arrival order starting at 1: `U5` is the fifth
/// update received.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UpdateId(pub u64);

impl UpdateId {
    pub const ZERO: UpdateId = UpdateId(0);

    pub fn next(self) -> UpdateId {
        UpdateId(self.0 + 1)
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0)
    }
}

/// Identifier of a warehouse view / its view manager (one manager per
/// view, as in Figure 1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ViewId(pub u32);

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// Submission sequence number of a warehouse transaction within one merge
/// process (defines the order dependent transactions must commit in).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TxnSeq(pub u64);

impl TxnSeq {
    pub fn next(self) -> TxnSeq {
        TxnSeq(self.0 + 1)
    }
}

impl fmt::Display for TxnSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WT{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_id_ordering_and_display() {
        assert!(UpdateId(1) < UpdateId(2));
        assert_eq!(UpdateId(5).to_string(), "U5");
        assert_eq!(UpdateId::ZERO.next(), UpdateId(1));
        assert!(UpdateId::ZERO.is_zero());
    }

    #[test]
    fn txn_seq_next() {
        assert_eq!(TxnSeq(0).next(), TxnSeq(1));
        assert_eq!(TxnSeq(3).to_string(), "WT3");
    }
}
