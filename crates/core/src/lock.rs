//! Lockdep-style lock-order auditing (`AuditedMutex` / `AuditedRwLock`).
//!
//! Every audited lock is registered under a stable, human-readable name
//! (e.g. `"whips.warehouse"`) and assigned a [`LockId`]. With the
//! `lock-audit` feature enabled, each acquisition records an edge from
//! every lock the acquiring thread already holds to the lock being
//! acquired, folding all threads' acquisition stacks into one global
//! lock-order graph. The first time an edge closes a cycle, the cycle is
//! reported as a potential deadlock together with **both** offending
//! acquisition chains (which thread held what while acquiring what), so
//! the report is actionable without a debugger.
//!
//! With the feature disabled the wrappers compile down to a bare
//! `parking_lot` lock plus an ignored `&'static str` — zero runtime cost
//! on the hot path.
//!
//! The graph is process-global (locks of the same name in different
//! runtime instances share a node). Consumers that may run concurrently
//! with unrelated tests should filter [`lock_cycles`] by name prefix via
//! [`LockCycle::within_prefixes`].

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Stable identifier for an audited lock class, assigned at first
/// registration of its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// One thread's acquisition stack at the moment it acquired (or tried to
/// acquire) a lock: the locks already held, outermost first, plus the
/// lock being acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcquisitionChain {
    /// Name of the thread that performed the acquisition.
    pub thread: String,
    /// Names of the locks already held, in acquisition order.
    pub held: Vec<String>,
    /// Name of the lock being acquired.
    pub acquiring: String,
}

impl fmt::Display for AcquisitionChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thread `{}` holding [{}] acquired `{}`",
            self.thread,
            self.held.join(" -> "),
            self.acquiring
        )
    }
}

/// A cycle in the global lock-order graph: a potential deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockCycle {
    /// The lock names on the cycle, in edge order (the last one orders
    /// back before the first).
    pub locks: Vec<String>,
    /// One witness acquisition chain per edge on the cycle.
    pub chains: Vec<AcquisitionChain>,
}

impl LockCycle {
    /// True if any lock on the cycle has this exact name.
    pub fn involves(&self, name: &str) -> bool {
        self.locks.iter().any(|l| l == name)
    }

    /// True if every lock on the cycle starts with one of the prefixes.
    pub fn within_prefixes(&self, prefixes: &[&str]) -> bool {
        self.locks
            .iter()
            .all(|l| prefixes.iter().any(|p| l.starts_with(p)))
    }
}

impl fmt::Display for LockCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "potential deadlock: lock-order cycle {} -> {}",
            self.locks.join(" -> "),
            self.locks.first().map(String::as_str).unwrap_or("?")
        )?;
        for c in &self.chains {
            writeln!(f, "  witness: {c}")?;
        }
        Ok(())
    }
}

/// Intern a dynamically-built lock-class name (e.g. `"shard0.warehouse"`)
/// into the `&'static str` the audited wrappers require. Each distinct
/// name is leaked exactly once and the same reference is returned on
/// every later call, so per-shard lock construction across many runs
/// never grows memory beyond the set of unique names. Compiled
/// regardless of the `lock-audit` feature: construction sites use it
/// unconditionally.
pub fn intern_lock_name(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let registry = INTERNED.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut registry = registry.lock().expect("lock-name intern registry poisoned");
    if let Some(existing) = registry.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    registry.insert(leaked);
    leaked
}

#[cfg(feature = "lock-audit")]
mod audit {
    use super::{AcquisitionChain, LockCycle};
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    use std::sync::{Mutex, OnceLock};

    /// The global lock-order graph. Guarded by a plain `std` mutex (not
    /// an audited one): it is a leaf acquired only inside the audit
    /// itself.
    struct Graph {
        names: Vec<&'static str>,
        ids: BTreeMap<&'static str, u32>,
        /// (held, acquired) -> witness chain recorded when the edge was
        /// first seen.
        edges: BTreeMap<(u32, u32), AcquisitionChain>,
        /// Adjacency of `edges` for cycle search.
        adj: BTreeMap<u32, BTreeSet<u32>>,
        /// Canonical node-sets of cycles already reported (dedup).
        reported: BTreeSet<Vec<u32>>,
        cycles: Vec<LockCycle>,
    }

    impl Graph {
        fn new() -> Self {
            Graph {
                names: Vec::new(),
                ids: BTreeMap::new(),
                edges: BTreeMap::new(),
                adj: BTreeMap::new(),
                reported: BTreeSet::new(),
                cycles: Vec::new(),
            }
        }

        /// DFS for a path `from -> ... -> to` in the current graph.
        fn path(&self, from: u32, to: u32) -> Option<Vec<u32>> {
            let mut stack = vec![(from, vec![from])];
            let mut seen = BTreeSet::new();
            while let Some((n, path)) = stack.pop() {
                if n == to {
                    return Some(path);
                }
                if !seen.insert(n) {
                    continue;
                }
                if let Some(next) = self.adj.get(&n) {
                    for &m in next {
                        if !seen.contains(&m) {
                            let mut p = path.clone();
                            p.push(m);
                            stack.push((m, p));
                        }
                    }
                }
            }
            None
        }
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(Graph::new()))
    }

    thread_local! {
        /// Locks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
        /// Edges this thread has already pushed into the global graph —
        /// lets steady-state reacquisition skip the global mutex.
        static SEEN: RefCell<BTreeSet<(u32, u32)>> = const { RefCell::new(BTreeSet::new()) };
    }

    pub(super) fn register(name: &'static str) -> u32 {
        let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = g.ids.get(name) {
            return id;
        }
        let id = g.names.len() as u32;
        g.names.push(name);
        g.ids.insert(name, id);
        id
    }

    fn current_chain(g: &Graph, held: &[u32], acquiring: u32) -> AcquisitionChain {
        AcquisitionChain {
            thread: std::thread::current()
                .name()
                .unwrap_or("<unnamed>")
                .to_string(),
            held: held
                .iter()
                .map(|&h| g.names[h as usize].to_string())
                .collect(),
            acquiring: g.names[acquiring as usize].to_string(),
        }
    }

    /// Record that the current thread is acquiring `id`, folding the
    /// implied order edges into the global graph and reporting any cycle
    /// the new edges close. Called *before* blocking on the lock so a
    /// real deadlock still gets its report.
    pub(super) fn on_acquire(id: u32) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            let new_edges: Vec<(u32, u32)> = SEEN.with(|seen| {
                let seen = seen.borrow();
                held.iter()
                    .map(|&h| (h, id))
                    .filter(|e| !seen.contains(e))
                    .collect()
            });
            if !new_edges.is_empty() {
                let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
                for &(h, b) in &new_edges {
                    if g.edges.contains_key(&(h, b)) {
                        continue;
                    }
                    // Would inserting h -> b close a cycle? Look for an
                    // existing path b -> ... -> h first.
                    if let Some(path) = g.path(b, h) {
                        record_cycle(&mut g, &path, &held, b);
                    }
                    let chain = current_chain(&g, &held, b);
                    g.edges.insert((h, b), chain);
                    g.adj.entry(h).or_default().insert(b);
                }
                drop(g);
                SEEN.with(|seen| seen.borrow_mut().extend(new_edges));
            }
            held.push(id);
        });
    }

    /// `path` is `b -> ... -> h` (already in the graph); the offending
    /// new edge is `h -> b`, witnessed by the current thread's stack.
    fn record_cycle(g: &mut Graph, path: &[u32], held: &[u32], acquiring: u32) {
        let mut canon: Vec<u32> = path.to_vec();
        canon.sort_unstable();
        canon.dedup();
        if !g.reported.insert(canon) {
            return;
        }
        let locks = path
            .iter()
            .map(|&n| g.names[n as usize].to_string())
            .collect();
        let mut chains: Vec<AcquisitionChain> = path
            .windows(2)
            .filter_map(|w| g.edges.get(&(w[0], w[1])).cloned())
            .collect();
        chains.push(current_chain(g, held, acquiring));
        g.cycles.push(LockCycle { locks, chains });
    }

    pub(super) fn on_release(id: u32) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == id) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn cycles() -> Vec<LockCycle> {
        graph()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .cycles
            .clone()
    }

    pub(super) fn names() -> Vec<String> {
        graph()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .names
            .iter()
            .map(|n| n.to_string())
            .collect()
    }

    pub(super) fn edge_count() -> usize {
        graph()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .edges
            .len()
    }
}

/// Snapshot of every lock-order cycle detected so far, process-wide.
/// Cheap when the graph is quiet; empty when `lock-audit` is off.
pub fn lock_cycles() -> Vec<LockCycle> {
    #[cfg(feature = "lock-audit")]
    {
        audit::cycles()
    }
    #[cfg(not(feature = "lock-audit"))]
    {
        Vec::new()
    }
}

/// Names of every audited lock registered so far (empty when the
/// feature is off). Useful for smoke binaries to prove the
/// instrumentation is actually live.
pub fn audited_lock_names() -> Vec<String> {
    #[cfg(feature = "lock-audit")]
    {
        audit::names()
    }
    #[cfg(not(feature = "lock-audit"))]
    {
        Vec::new()
    }
}

/// Number of distinct lock-order edges observed so far (0 when off).
pub fn lock_order_edges() -> usize {
    #[cfg(feature = "lock-audit")]
    {
        audit::edge_count()
    }
    #[cfg(not(feature = "lock-audit"))]
    {
        0
    }
}

/// A `parking_lot::Mutex` that participates in lock-order auditing.
pub struct AuditedMutex<T: ?Sized> {
    #[cfg(feature = "lock-audit")]
    id: u32,
    inner: parking_lot::Mutex<T>,
}

impl<T> AuditedMutex<T> {
    /// Wrap `value` under the audit class `name`. Names are global:
    /// every lock created with the same name shares one graph node.
    pub fn new(name: &'static str, value: T) -> Self {
        #[cfg(not(feature = "lock-audit"))]
        let _ = name;
        AuditedMutex {
            #[cfg(feature = "lock-audit")]
            id: audit::register(name),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> AuditedMutex<T> {
    /// Acquire, recording the acquisition against the holder's stack
    /// before blocking (so a live deadlock still produces a report).
    pub fn lock(&self) -> AuditedMutexGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        audit::on_acquire(self.id);
        AuditedMutexGuard {
            #[cfg(feature = "lock-audit")]
            id: self.id,
            inner: self.inner.lock(),
        }
    }

    /// Non-blocking acquire; recorded like `lock` only on success, so a
    /// failed try leaves no edge (try-lock cannot deadlock by itself,
    /// but the order it implies on success is still audited).
    pub fn try_lock(&self) -> Option<AuditedMutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        #[cfg(feature = "lock-audit")]
        audit::on_acquire(self.id);
        Some(AuditedMutexGuard {
            #[cfg(feature = "lock-audit")]
            id: self.id,
            inner,
        })
    }

    /// Direct access through `&mut self` — no locking, no audit.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for AuditedMutex<T> {
    fn default() -> Self {
        AuditedMutex::new("core.unnamed", T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for AuditedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditedMutex").finish_non_exhaustive()
    }
}

/// Guard for [`AuditedMutex`]; releases the audit stack entry on drop.
pub struct AuditedMutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-audit")]
    id: u32,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for AuditedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for AuditedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lock-audit")]
impl<T: ?Sized> Drop for AuditedMutexGuard<'_, T> {
    fn drop(&mut self) {
        audit::on_release(self.id);
    }
}

/// A `parking_lot::RwLock` that participates in lock-order auditing.
/// Read and write acquisitions share one graph node: reader/writer
/// upgrades are not modeled, only inter-lock order.
pub struct AuditedRwLock<T: ?Sized> {
    #[cfg(feature = "lock-audit")]
    id: u32,
    inner: parking_lot::RwLock<T>,
}

impl<T> AuditedRwLock<T> {
    /// Wrap `value` under the audit class `name`.
    pub fn new(name: &'static str, value: T) -> Self {
        #[cfg(not(feature = "lock-audit"))]
        let _ = name;
        AuditedRwLock {
            #[cfg(feature = "lock-audit")]
            id: audit::register(name),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> AuditedRwLock<T> {
    /// Shared acquire; audited like a mutex acquisition.
    pub fn read(&self) -> AuditedReadGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        audit::on_acquire(self.id);
        AuditedReadGuard {
            #[cfg(feature = "lock-audit")]
            id: self.id,
            inner: self.inner.read(),
        }
    }

    /// Exclusive acquire; audited like a mutex acquisition.
    pub fn write(&self) -> AuditedWriteGuard<'_, T> {
        #[cfg(feature = "lock-audit")]
        audit::on_acquire(self.id);
        AuditedWriteGuard {
            #[cfg(feature = "lock-audit")]
            id: self.id,
            inner: self.inner.write(),
        }
    }

    /// Direct access through `&mut self` — no locking, no audit.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for AuditedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditedRwLock").finish_non_exhaustive()
    }
}

/// Shared guard for [`AuditedRwLock`].
pub struct AuditedReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-audit")]
    id: u32,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for AuditedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lock-audit")]
impl<T: ?Sized> Drop for AuditedReadGuard<'_, T> {
    fn drop(&mut self) {
        audit::on_release(self.id);
    }
}

/// Exclusive guard for [`AuditedRwLock`].
pub struct AuditedWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-audit")]
    id: u32,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for AuditedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for AuditedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lock-audit")]
impl<T: ?Sized> Drop for AuditedWriteGuard<'_, T> {
    fn drop(&mut self) {
        audit::on_release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_lock_name_is_stable_per_unique_name() {
        let a = intern_lock_name("coretest.intern.shard0");
        let b = intern_lock_name("coretest.intern.shard0");
        let c = intern_lock_name("coretest.intern.shard1");
        assert!(std::ptr::eq(a, b), "same name must intern to one leak");
        assert_ne!(a, c);
        // The interned name is usable as an audited lock class.
        let m = AuditedMutex::new(a, 1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn wrapper_behaves_like_a_mutex() {
        let m = AuditedMutex::new("coretest.plain", 7u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 8);
        assert!(m.try_lock().is_some());
        let rw = AuditedRwLock::new("coretest.plain_rw", vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    fn nested_acquisitions_in_one_order_are_clean() {
        let a = AuditedMutex::new("coretest.clean_a", ());
        let b = AuditedMutex::new("coretest.clean_b", ());
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(
            lock_cycles()
                .iter()
                .all(|c| !c.involves("coretest.clean_a")),
            "consistent a -> b nesting must not report a cycle"
        );
    }

    /// The negative test the issue demands: a synthetic inverted
    /// acquisition order is reported as a cycle naming both chains.
    #[cfg(feature = "lock-audit")]
    #[test]
    fn inverted_acquisition_order_reports_cycle_with_both_chains() {
        let a = AuditedMutex::new("negtest.alpha", ());
        let b = AuditedMutex::new("negtest.beta", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let cycles: Vec<LockCycle> = lock_cycles()
            .into_iter()
            .filter(|c| c.involves("negtest.alpha"))
            .collect();
        assert_eq!(cycles.len(), 1, "exactly one deduped cycle for the pair");
        let c = &cycles[0];
        assert!(c.involves("negtest.alpha") && c.involves("negtest.beta"));
        assert_eq!(c.chains.len(), 2, "both offending chains are reported");
        let rendered = c.to_string();
        assert!(
            rendered.contains("holding [negtest.alpha] acquired `negtest.beta`"),
            "first chain named: {rendered}"
        );
        assert!(
            rendered.contains("holding [negtest.beta] acquired `negtest.alpha`"),
            "second chain named: {rendered}"
        );
        // Re-running the inversion must not duplicate the report.
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let again = lock_cycles()
            .into_iter()
            .filter(|c| c.involves("negtest.alpha"))
            .count();
        assert_eq!(again, 1);
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    fn three_lock_cycle_reports_every_chain() {
        let a = AuditedMutex::new("negtest3.a", ());
        let b = AuditedMutex::new("negtest3.b", ());
        let c = AuditedMutex::new("negtest3.c", ());
        {
            let _g1 = a.lock();
            let _g2 = b.lock();
        }
        {
            let _g1 = b.lock();
            let _g2 = c.lock();
        }
        {
            let _g1 = c.lock();
            let _g2 = a.lock();
        }
        let cycles: Vec<LockCycle> = lock_cycles()
            .into_iter()
            .filter(|cy| cy.involves("negtest3.a"))
            .collect();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].locks.len(), 3);
        assert_eq!(cycles[0].chains.len(), 3);
        assert!(cycles[0].within_prefixes(&["negtest3."]));
    }

    #[cfg(feature = "lock-audit")]
    #[test]
    fn rwlock_orders_fold_into_the_same_graph() {
        let m = AuditedMutex::new("negtestrw.m", ());
        let rw = AuditedRwLock::new("negtestrw.rw", ());
        {
            let _g1 = m.lock();
            let _g2 = rw.read();
        }
        {
            let _g1 = rw.write();
            let _g2 = m.lock();
        }
        assert_eq!(
            lock_cycles()
                .into_iter()
                .filter(|c| c.involves("negtestrw.m"))
                .count(),
            1
        );
    }
}
