//! Protocol errors surfaced by the merge algorithms.

use crate::ids::{UpdateId, ViewId};
use std::fmt;

/// Violations of the messaging protocol the algorithms assume (§3.2/§3.3).
/// These indicate a buggy integrator or view manager, never a legal
/// interleaving — legal reorderings are handled internally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// `REL_i` arrived out of order; the integrator channel must be FIFO
    /// and gapless.
    NonSequentialRel { expected: UpdateId, got: UpdateId },
    /// An action list referenced a view this merge process does not manage.
    UnknownView(ViewId),
    /// An AL arrived for an entry that is not white: either a duplicate AL
    /// (red/gray) or an AL for an update the integrator marked irrelevant
    /// (black).
    UnexpectedAction {
        view: ViewId,
        update: UpdateId,
        found: &'static str,
    },
    /// SPA received a batched AL; batching managers require PA (§5).
    BatchedActionInSpa {
        view: ViewId,
        first: UpdateId,
        last: UpdateId,
    },
    /// A batched AL covers updates at or before the view's last covered
    /// update — the view manager violated in-order AL generation.
    StaleAction { view: ViewId, last: UpdateId },
    /// A VUT paint transition (`set_red`/`set_gray`) addressed a cell that
    /// does not exist — a malformed action list survived validation, or
    /// internal bookkeeping lost a row.
    VutMissingEntry {
        update: UpdateId,
        view: ViewId,
        op: &'static str,
    },
    /// A VUT paint transition found the cell in the wrong color (e.g. a
    /// duplicate AL trying to re-redden an applied entry).
    VutColorConflict {
        update: UpdateId,
        view: ViewId,
        op: &'static str,
        expected: &'static str,
        found: &'static str,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NonSequentialRel { expected, got } => {
                write!(f, "REL out of order: expected {expected}, got {got}")
            }
            MergeError::UnknownView(v) => write!(f, "unknown view {v}"),
            MergeError::UnexpectedAction {
                view,
                update,
                found,
            } => write!(
                f,
                "unexpected action list for [{update}, {view}]: entry is {found}"
            ),
            MergeError::BatchedActionInSpa { view, first, last } => write!(
                f,
                "SPA received batched AL from {view} covering {first}..{last}; use PA"
            ),
            MergeError::StaleAction { view, last } => {
                write!(f, "stale action list from {view} ending at {last}")
            }
            MergeError::VutMissingEntry { update, view, op } => {
                write!(f, "{op} on missing entry [{update},{view}]")
            }
            MergeError::VutColorConflict {
                update,
                view,
                op,
                expected,
                found,
            } => write!(
                f,
                "{op} on [{update},{view}]: expected {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for MergeError {}
