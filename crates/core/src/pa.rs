//! The Painting Algorithm (Algorithm 2, §5).
//!
//! PA coordinates **strongly consistent** view managers (e.g. Strobe
//! \[17\]): one action list `AL^x_j` may cover a *batch* of intertwined
//! source updates `first ..= j`. Receiving an AL therefore turns every
//! still-white entry of column `x` at rows `≤ j` red, recording the jump
//! `state = j`; a row `i` with a jump state `j > i` can only be applied
//! together with row `j` (and, transitively, everything row `j` needs).
//!
//! `ProcessRow` computes this closure (`ApplyRows`): it fails if any
//! needed action list is missing, and otherwise the whole closure is
//! applied as **one** warehouse transaction. Views skip the intermediate
//! states — PA yields MVC *strong consistency*, not completeness
//! (Theorem 5.1), which is the best possible with batching managers.
//!
//! ### Pseudocode clarification (DESIGN.md §5.2)
//! The paper's Lines 6–9 run inside `ProcessRow`, which under a literal
//! reading lets an inner recursive call apply `ApplyRows` before the outer
//! call has verified all of its own column dependencies. We instead split
//! the procedure into a pure marking phase (Lines 1–5) and apply the
//! closure only after the *outermost* marking succeeds — the only reading
//! under which every row in the released transaction has had all of its
//! same-column predecessors either applied or included. Example 5
//! reproduces exactly under this reading (see the golden tests).

use crate::action::{ActionList, WarehouseTxn};
use crate::error::MergeError;
use crate::ids::{TxnSeq, UpdateId, ViewId};
use crate::snapshot::PaSnapshot;
use crate::vut::{Color, Vut};
use std::collections::{BTreeMap, BTreeSet};

/// PA engine state; same event-driven surface as [`Spa`](crate::spa::Spa).
#[derive(Debug, Clone)]
pub struct Pa<P> {
    vut: Vut<P>,
    max_rel: UpdateId,
    pending: BTreeMap<UpdateId, Vec<ActionList<P>>>,
    next_seq: TxnSeq,
    /// Last update covered per view (stale-AL detection).
    last_covered: BTreeMap<ViewId, UpdateId>,
    stats: PaStats,
}

/// Counters for the §7 experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PaStats {
    pub rels_received: u64,
    pub actions_received: u64,
    pub batched_actions: u64,
    pub txns_emitted: u64,
    /// Rows covered by emitted transactions (≥ txns when closures merge
    /// several rows).
    pub rows_applied: u64,
    pub max_live_rows: usize,
}

impl<P: Clone> Pa<P> {
    pub fn new(views: impl IntoIterator<Item = ViewId>) -> Self {
        Pa {
            vut: Vut::new(views),
            max_rel: UpdateId::ZERO,
            pending: BTreeMap::new(),
            next_seq: TxnSeq(1),
            last_covered: BTreeMap::new(),
            stats: PaStats::default(),
        }
    }

    pub fn vut(&self) -> &Vut<P> {
        &self.vut
    }

    /// Mutable VUT access for the durability hooks (paint-event sink).
    pub fn vut_mut(&mut self) -> &mut Vut<P> {
        &mut self.vut
    }

    /// Capture the full engine state for a durability checkpoint.
    pub fn snapshot(&self) -> PaSnapshot<P> {
        PaSnapshot {
            vut: self.vut.snapshot(),
            max_rel: self.max_rel,
            pending: self.pending.clone(),
            next_seq: self.next_seq,
            last_covered: self.last_covered.clone(),
            stats: self.stats,
        }
    }

    /// Rebuild an engine from a checkpoint snapshot.
    pub fn from_snapshot(s: PaSnapshot<P>) -> Self {
        Pa {
            vut: Vut::from_snapshot(s.vut),
            max_rel: s.max_rel,
            pending: s.pending,
            next_seq: s.next_seq,
            last_covered: s.last_covered,
            stats: s.stats,
        }
    }

    /// Register a new view column on the fly (§1.2).
    pub fn add_view(&mut self, v: ViewId) {
        self.vut.add_view(v);
    }

    pub fn stats(&self) -> PaStats {
        self.stats
    }

    pub fn is_quiescent(&self) -> bool {
        self.vut.is_empty() && self.pending.is_empty()
    }

    /// Receive `REL_i` (FIFO, gapless, one per update).
    pub fn on_rel(
        &mut self,
        i: UpdateId,
        relevant: BTreeSet<ViewId>,
    ) -> Result<Vec<WarehouseTxn<P>>, MergeError> {
        if i != self.max_rel.next() {
            return Err(MergeError::NonSequentialRel {
                expected: self.max_rel.next(),
                got: i,
            });
        }
        for v in &relevant {
            if !self.vut.has_view(*v) {
                return Err(MergeError::UnknownView(*v));
            }
        }
        self.stats.rels_received += 1;
        self.max_rel = i;
        if relevant.is_empty() {
            // An update relevant to no view needs no row.
            return Ok(Vec::new());
        }
        self.vut.insert_row(i, &relevant);
        self.stats.max_live_rows = self.stats.max_live_rows.max(self.vut.live_rows());

        let mut out = Vec::new();
        if let Some(als) = self.pending.remove(&i) {
            for al in als {
                self.process_action(al, &mut out)?;
            }
        }
        Ok(out)
    }

    /// Receive `AL^x_j`, possibly covering a batch `first ..= j`. ALs for
    /// updates whose `REL` has not arrived are buffered *before* view
    /// validation — with dynamic installation (§1.2) the column may be
    /// announced between now and that REL.
    pub fn on_action(&mut self, al: ActionList<P>) -> Result<Vec<WarehouseTxn<P>>, MergeError> {
        if al.last <= self.max_rel && !self.vut.has_view(al.view) {
            return Err(MergeError::UnknownView(al.view));
        }
        self.stats.actions_received += 1;
        if al.is_batched() {
            self.stats.batched_actions += 1;
        }
        let mut out = Vec::new();
        if al.last > self.max_rel {
            self.pending.entry(al.last).or_default().push(al);
        } else {
            self.process_action(al, &mut out)?;
        }
        Ok(out)
    }

    /// `ProcessAction(AL^x_j)`: paint all uncovered entries of column `x`
    /// up to `j` red with jump state `j`, then attempt row `j`.
    fn process_action(
        &mut self,
        al: ActionList<P>,
        out: &mut Vec<WarehouseTxn<P>>,
    ) -> Result<(), MergeError> {
        let (j, x) = (al.last, al.view);
        if !self.vut.has_view(x) {
            return Err(MergeError::UnknownView(x));
        }
        if let Some(&covered) = self.last_covered.get(&x) {
            if al.first <= covered {
                return Err(MergeError::StaleAction { view: x, last: j });
            }
        }
        match self.vut.color(j, x) {
            Some(Color::White) => {}
            Some(Color::Red) => {
                return Err(MergeError::UnexpectedAction {
                    view: x,
                    update: j,
                    found: "red (duplicate AL)",
                })
            }
            Some(Color::Gray) => {
                return Err(MergeError::UnexpectedAction {
                    view: x,
                    update: j,
                    found: "gray (already applied)",
                })
            }
            Some(Color::Black) | None => {
                return Err(MergeError::UnexpectedAction {
                    view: x,
                    update: j,
                    found: "black/missing (update irrelevant to view)",
                })
            }
        }
        let whites = self.vut.whites_up_to(j, x);
        debug_assert!(
            whites.iter().all(|&w| w >= al.first),
            "AL {al} claims first={} but column {x} has uncovered rows below it",
            al.first.0,
        );
        for &i in &whites {
            self.vut.set_red(i, x, j)?;
        }
        self.vut.store_action(al);
        self.last_covered.insert(x, j);
        self.attempt(j, out)?;
        Ok(())
    }

    /// Try to apply the closure rooted at row `i` (one top-level
    /// `ProcessRow` with a fresh `ApplyRows`).
    fn attempt(&mut self, i: UpdateId, out: &mut Vec<WarehouseTxn<P>>) -> Result<(), MergeError> {
        if !self.vut.has_row(i) {
            return Ok(()); // already applied
        }
        let mut apply_rows = BTreeSet::new();
        if self.mark(i, &mut apply_rows) {
            self.commit(apply_rows, out)?;
        }
        Ok(())
    }

    /// `ProcessRow` lines 1–5: pure marking. Returns false when any
    /// transitively required action list has not arrived.
    fn mark(&mut self, i: UpdateId, apply_rows: &mut BTreeSet<UpdateId>) -> bool {
        // Line 1: already part of the closure.
        if apply_rows.contains(&i) {
            return true;
        }
        if !self.vut.has_row(i) {
            debug_assert!(false, "mark() reached a purged row {i}");
            return true;
        }
        // Line 2: some AL still missing for this row.
        if self.vut.row_has_white(i) {
            return false;
        }
        // Line 3.
        apply_rows.insert(i);
        // Line 4: every earlier unapplied AL from the same managers must
        // join the closure.
        for x in self.vut.reds_in_row(i) {
            for i_prev in self.vut.reds_before(i, x) {
                if !self.mark(i_prev, apply_rows) {
                    return false;
                }
            }
        }
        // Line 5: batched entries drag in their jump-target rows.
        for j in self.vut.jump_targets(i) {
            if !self.mark(j, apply_rows) {
                return false;
            }
        }
        true
    }

    /// Lines 6–10: apply the closure as a single warehouse transaction,
    /// then chase rows unblocked by it.
    fn commit(
        &mut self,
        apply_rows: BTreeSet<UpdateId>,
        out: &mut Vec<WarehouseTxn<P>>,
    ) -> Result<(), MergeError> {
        debug_assert!(!apply_rows.is_empty());
        let mut actions: Vec<ActionList<P>> = Vec::new();
        let mut views: BTreeSet<ViewId> = BTreeSet::new();
        let rows: Vec<UpdateId> = apply_rows.iter().copied().collect();
        for &r in &rows {
            // Line 6: red → gray.
            for x in self.vut.reds_in_row(r) {
                self.vut.set_gray(r, x)?;
                views.insert(x);
            }
            // Line 7: gather WT_r (ascending r keeps per-view AL order).
            actions.extend(self.vut.take_wt(r));
        }
        let frontier = *rows.last().expect("non-empty closure");
        let seq = self.next_seq;
        self.next_seq = seq.next();
        self.stats.txns_emitted += 1;
        self.stats.rows_applied += rows.len() as u64;
        out.push(WarehouseTxn {
            seq,
            rows: rows.clone(),
            actions,
            views: views.clone(),
            frontier,
        });

        // Line 9: candidate follow-ups — the next unapplied AL of every
        // view we just advanced. (Entry-based nextRed; equivalent to the
        // paper's AL-based definition because every red entry's jump state
        // leads `mark` to the AL's own row.)
        let followups: BTreeSet<UpdateId> = views
            .iter()
            .filter_map(|&x| self.vut.next_red(UpdateId::ZERO, x))
            .collect();
        // Line 10: purge fully-applied rows.
        self.vut.purge_applied();
        for f in followups {
            self.attempt(f, out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<ViewId> {
        ids.iter().map(|&v| ViewId(v)).collect()
    }

    fn al(view: u32, update: u64) -> ActionList<&'static str> {
        ActionList::single(ViewId(view), UpdateId(update), "ops")
    }

    fn batch(view: u32, first: u64, last: u64) -> ActionList<&'static str> {
        ActionList::batch(ViewId(view), UpdateId(first), UpdateId(last), "ops")
    }

    /// Example 4 (§5.1): with a batched AL1_3 covering U1 and U3, rows 1
    /// and 2 must be held even when all their own ALs have arrived,
    /// because row 1 is tied to row 3 whose AL2_3 is missing. SPA would
    /// wrongly release rows 1 and 2 here.
    #[test]
    fn paper_example_4_holds_intertwined_rows() {
        // V1=R⋈S, V2=S⋈T⋈Q, V3=Q; U1 on S, U2 on Q, U3 on S.
        let mut pa = Pa::new([ViewId(1), ViewId(2), ViewId(3)]);
        let rel = |pa: &mut Pa<&'static str>, i: u64, vs: &[u32]| {
            pa.on_rel(UpdateId(i), set(vs)).unwrap()
        };
        assert!(rel(&mut pa, 1, &[1, 2]).is_empty());
        assert!(rel(&mut pa, 2, &[2, 3]).is_empty());
        assert!(rel(&mut pa, 3, &[1, 2]).is_empty());

        // AL1_3 covers U1 and U3 for V1.
        assert!(pa.on_action(batch(1, 1, 3)).unwrap().is_empty());
        assert_eq!(pa.vut().color(UpdateId(1), ViewId(1)), Some(Color::Red));
        assert_eq!(
            pa.vut().entry(UpdateId(1), ViewId(1)).unwrap().state,
            UpdateId(3),
            "intertwined entry records jump state 3"
        );

        // All ALs for U1 and U2 arrive; rows 1 and 2 must still hold.
        assert!(pa.on_action(al(2, 1)).unwrap().is_empty());
        assert!(pa.on_action(al(2, 2)).unwrap().is_empty());
        assert!(pa.on_action(al(3, 2)).unwrap().is_empty(), "rows 1-2 held");

        // AL2_3 completes row 3 → everything releases as ONE transaction.
        let txns = pa.on_action(al(2, 3)).unwrap();
        assert_eq!(txns.len(), 1);
        let t = &txns[0];
        assert_eq!(t.rows, vec![UpdateId(1), UpdateId(2), UpdateId(3)]);
        assert_eq!(t.views, set(&[1, 2, 3]));
        assert_eq!(t.frontier, UpdateId(3));
        assert!(pa.is_quiescent());
    }

    /// Example 5 (§5.1), full trace: WT1 applies alone at t4; rows 2 and 3
    /// apply together at t6.
    #[test]
    fn paper_example_5_trace() {
        // V1=R⋈S, V2=S⋈T⋈Q, V3=Q; U1 on S (V1,V2), U2 on Q (V2,V3),
        // U3 on Q (V2,V3).
        let mut pa = Pa::new([ViewId(1), ViewId(2), ViewId(3)]);
        pa.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        pa.on_rel(UpdateId(2), set(&[2, 3])).unwrap();
        pa.on_rel(UpdateId(3), set(&[2, 3])).unwrap();

        // t1: AL2_1 — ProcessRow(1) returns false (V1 white).
        assert!(pa.on_action(al(2, 1)).unwrap().is_empty());
        // t2: AL2_3 covering U2..U3 — ProcessRow(3) false (V3 white).
        assert!(pa.on_action(batch(2, 2, 3)).unwrap().is_empty());
        assert_eq!(
            pa.vut().entry(UpdateId(2), ViewId(2)).unwrap().state,
            UpdateId(3)
        );
        // t3: AL3_2 — ProcessRow(2) → ProcessRow(1) false.
        assert!(pa.on_action(al(3, 2)).unwrap().is_empty());
        // t4: AL1_1 — row 1 applies alone.
        let txns = pa.on_action(al(1, 1)).unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].rows, vec![UpdateId(1)]);
        assert_eq!(txns[0].views, set(&[1, 2]));
        // t5: rows 2, 3 remain, held.
        assert_eq!(pa.vut().live_rows(), 2);
        // t6: AL3_3 — rows 2 and 3 apply together as a single transaction.
        let txns = pa.on_action(al(3, 3)).unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].rows, vec![UpdateId(2), UpdateId(3)]);
        assert_eq!(txns[0].views, set(&[2, 3]));
        assert_eq!(txns[0].frontier, UpdateId(3));
        assert!(pa.is_quiescent());
    }

    /// With purely complete managers (no batching), PA behaves like SPA.
    #[test]
    fn degenerates_to_spa_without_batching() {
        let mut pa = Pa::new([ViewId(1), ViewId(2)]);
        pa.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        pa.on_rel(UpdateId(2), set(&[2])).unwrap();
        assert!(pa.on_action(al(2, 1)).unwrap().is_empty());
        assert!(pa.on_action(al(2, 2)).unwrap().is_empty());
        let txns = pa.on_action(al(1, 1)).unwrap();
        assert_eq!(txns.len(), 2, "row 1 then cascaded row 2");
        assert_eq!(txns[0].rows, vec![UpdateId(1)]);
        assert_eq!(txns[1].rows, vec![UpdateId(2)]);
    }

    /// A batched AL whose range precedes its REL is buffered.
    #[test]
    fn batched_action_before_rel_buffered() {
        let mut pa = Pa::new([ViewId(1)]);
        pa.on_rel(UpdateId(1), set(&[1])).unwrap();
        assert!(
            pa.on_action(batch(1, 1, 2)).unwrap().is_empty(),
            "REL2 missing"
        );
        let txns = pa.on_rel(UpdateId(2), set(&[1])).unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].rows, vec![UpdateId(1), UpdateId(2)]);
    }

    #[test]
    fn stale_action_rejected() {
        let mut pa = Pa::new([ViewId(1)]);
        pa.on_rel(UpdateId(1), set(&[1])).unwrap();
        pa.on_rel(UpdateId(2), set(&[1])).unwrap();
        pa.on_action(batch(1, 1, 2)).unwrap();
        pa.on_rel(UpdateId(3), set(&[1])).unwrap();
        // covers update 2 again
        assert!(matches!(
            pa.on_action(batch(1, 2, 3)),
            Err(MergeError::StaleAction { .. })
        ));
    }

    #[test]
    fn empty_rel_is_skipped() {
        let mut pa: Pa<()> = Pa::new([ViewId(1)]);
        assert!(pa.on_rel(UpdateId(1), set(&[])).unwrap().is_empty());
        assert!(pa.is_quiescent());
    }

    /// Cross-view chaining through batches: V1 batches U1..U2, V2 has
    /// per-update ALs; releasing must happen as one closure containing
    /// rows 1 and 2 once everything arrived.
    #[test]
    fn closure_spans_views_and_batches() {
        let mut pa = Pa::new([ViewId(1), ViewId(2)]);
        pa.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        pa.on_rel(UpdateId(2), set(&[1])).unwrap();
        assert!(pa.on_action(al(2, 1)).unwrap().is_empty());
        let txns = pa.on_action(batch(1, 1, 2)).unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].rows, vec![UpdateId(1), UpdateId(2)]);
        assert_eq!(txns[0].views, set(&[1, 2]));
        assert!(pa.is_quiescent());
    }

    /// Follow-ups cascade after a closure commits. Per-manager FIFO is
    /// respected: VM1's batch for rows 1-2 precedes its AL for row 3.
    #[test]
    fn followup_rows_cascade() {
        let mut pa = Pa::new([ViewId(1), ViewId(2)]);
        pa.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        pa.on_rel(UpdateId(2), set(&[1])).unwrap();
        pa.on_rel(UpdateId(3), set(&[1])).unwrap();
        assert!(pa.on_action(batch(1, 1, 2)).unwrap().is_empty(), "V2 white");
        // Row 3's AL arrives next, blocked behind rows 1-2 (same manager).
        assert!(pa.on_action(al(1, 3)).unwrap().is_empty());
        let txns = pa.on_action(al(2, 1)).unwrap();
        assert_eq!(txns.len(), 2, "closure {{1,2}} then follow-up {{3}}");
        assert_eq!(txns[0].rows, vec![UpdateId(1), UpdateId(2)]);
        assert_eq!(txns[1].rows, vec![UpdateId(3)]);
        assert!(pa.is_quiescent());
    }

    #[test]
    fn duplicate_al_rejected_as_stale() {
        let mut pa = Pa::new([ViewId(1), ViewId(2)]);
        pa.on_rel(UpdateId(1), set(&[1, 2])).unwrap();
        pa.on_action(al(1, 1)).unwrap();
        // A re-sent AL re-covers update 1 → stale by the coverage check.
        assert!(matches!(
            pa.on_action(al(1, 1)),
            Err(MergeError::StaleAction { .. })
        ));
    }

    #[test]
    fn stats_count_batches() {
        let mut pa = Pa::new([ViewId(1)]);
        pa.on_rel(UpdateId(1), set(&[1])).unwrap();
        pa.on_rel(UpdateId(2), set(&[1])).unwrap();
        pa.on_action(batch(1, 1, 2)).unwrap();
        let s = pa.stats();
        assert_eq!(s.actions_received, 1);
        assert_eq!(s.batched_actions, 1);
        assert_eq!(s.txns_emitted, 1);
        assert_eq!(s.rows_applied, 2);
    }
}
