//! Happens-before auditing primitives: vector clocks over the pipeline's
//! processes and an [`HbState`] that checks two protocol invariants at
//! runtime — dependent commits of one merge group must be causally
//! ordered (no commit-order inversion, §4.3), and paint transitions of
//! one VUT cell must be totally ordered by happens-before (no
//! unsynchronized `PaintState` transition).
//!
//! The types here are plain data with no threading assumptions; the
//! threaded runtime (`mvc-whips`, behind its `hb-audit` feature) attaches
//! a clock to every channel send/recv and feeds commits and paint events
//! into one shared [`HbState`]. Keeping the checker in `mvc-core` lets
//! `mvc-analysis` (which depends on `mvc-whips`) reuse the diagnostics
//! without a dependency cycle.

use crate::ids::{TxnSeq, UpdateId, ViewId};
use std::collections::BTreeMap;
use std::fmt;

/// A vector clock over dynamically-registered process ids. Missing
/// components are implicitly zero, so clocks from disjoint process sets
/// compare as concurrent rather than panicking.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(BTreeMap<u32, u64>);

impl VectorClock {
    pub fn new() -> Self {
        VectorClock(BTreeMap::new())
    }

    /// Advance this process's own component.
    pub fn tick(&mut self, pid: u32) {
        *self.0.entry(pid).or_insert(0) += 1;
    }

    /// Pointwise maximum — the receive rule.
    pub fn join(&mut self, other: &VectorClock) {
        for (&pid, &t) in &other.0 {
            let e = self.0.entry(pid).or_insert(0);
            if *e < t {
                *e = t;
            }
        }
    }

    /// `self ≥ other` pointwise: every event in `other` is in this
    /// clock's causal past (or is this clock).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        other
            .0
            .iter()
            .all(|(pid, &t)| self.0.get(pid).copied().unwrap_or(0) >= t)
    }

    /// Neither clock dominates the other: causally unrelated events.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }

    pub fn component(&self, pid: u32) -> u64 {
        self.0.get(&pid).copied().unwrap_or(0)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (pid, t)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{pid}:{t}")?;
        }
        write!(f, "}}")
    }
}

/// A detected happens-before violation, with enough context to name the
/// offending transition in a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbViolation {
    /// Two *dependent* commits of the same merge group — §4.3: their
    /// view sets intersect — reached the warehouse without a
    /// happens-before edge between them (or with their transaction
    /// sequence numbers inverted): the commit-order guarantee is void
    /// for this pair. Independent commits (disjoint views, or different
    /// groups) are never flagged.
    CommitOrderInversion {
        group: usize,
        earlier: TxnSeq,
        later: TxnSeq,
        /// True when the sequence numbers themselves were out of order;
        /// false when the order was right but the clocks were concurrent
        /// (a synchronization gap rather than an observed reorder).
        seq_inverted: bool,
    },
    /// Two paint transitions of the same VUT cell `(update, view)` were
    /// causally unrelated: some path paints the cell without holding the
    /// merge process's serialization.
    UnorderedPaint {
        group: usize,
        view: ViewId,
        update: UpdateId,
    },
    /// A certified read observed a cut at `watermark` without the commit
    /// that published that watermark in its causal past: the watermark
    /// escaped to the reader before (or concurrently with) its commit
    /// stamp — a torn publication.
    StaleRead { session: u64, watermark: u64 },
    /// A version below the GC floor was pruned by a collector whose
    /// clock did not dominate every read of that version: the read was
    /// not happens-before the GC, so the pin protocol has a hole.
    ReadAfterGc {
        watermark: u64,
        /// How many reads of the pruned version had been recorded.
        reads: u64,
    },
}

impl HbViolation {
    /// True for the MVCC read-path checks ([`HbViolation::StaleRead`],
    /// [`HbViolation::ReadAfterGc`]); false for the commit/paint checks.
    /// Read-path violations are protocol bugs under *every* commit
    /// policy, whereas `CommitOrderInversion` is an expected diagnostic
    /// under deliberately weak policies.
    pub fn is_read_path(&self) -> bool {
        matches!(
            self,
            HbViolation::StaleRead { .. } | HbViolation::ReadAfterGc { .. }
        )
    }
}

impl fmt::Display for HbViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HbViolation::CommitOrderInversion {
                group,
                earlier,
                later,
                seq_inverted,
            } => write!(
                f,
                "commit-order inversion in group {group}: {earlier} then {later} ({})",
                if *seq_inverted {
                    "sequence inverted"
                } else {
                    "clocks concurrent"
                }
            ),
            HbViolation::UnorderedPaint {
                group,
                view,
                update,
            } => write!(
                f,
                "unordered paint of VUT cell ({update}, {view}) in group {group}"
            ),
            HbViolation::StaleRead { session, watermark } => write!(
                f,
                "stale read: session {session} observed watermark {watermark} without the \
                 publishing commit in its causal past"
            ),
            HbViolation::ReadAfterGc { watermark, reads } => write!(
                f,
                "read-after-gc: watermark {watermark} pruned without {reads} recorded read(s) \
                 in the collector's causal past"
            ),
        }
    }
}

/// Shared audit state: the last commit clock per merge group and the last
/// paint clock per VUT cell, plus every violation observed so far.
#[derive(Debug, Default)]
pub struct HbState {
    /// Internal component ticked per commit so two commits carrying
    /// identical sender stamps still get distinct clocks.
    commit_serial: u64,
    /// Last commit clock per (merge group, view) — the §4.3 dependence
    /// granularity: two commits of one group conflict iff their view
    /// sets intersect, so order is only enforced along shared views.
    last_commit: BTreeMap<(usize, ViewId), (TxnSeq, VectorClock)>,
    last_paint: BTreeMap<(usize, ViewId, UpdateId), VectorClock>,
    /// Clock of the cut publication per watermark (read-path check).
    publishes: BTreeMap<u64, VectorClock>,
    /// Per watermark: how many certified reads observed it, and the join
    /// of their clocks — what any GC of that version must dominate.
    read_joins: BTreeMap<u64, (u64, VectorClock)>,
    violations: Vec<HbViolation>,
}

/// Reserved pid for the audit's own warehouse-side commit counter.
const WAREHOUSE_PID: u32 = u32::MAX;

impl HbState {
    pub fn new() -> Self {
        HbState::default()
    }

    /// Record a warehouse commit of `(group, seq)` touching `views`,
    /// whose causal past is `stamp` (the releasing merge process's clock
    /// at send). Returns the commit's own clock, to be carried on the
    /// acknowledgement edge.
    ///
    /// Dominance is checked **per (group, view)**: §4.3 dependence says
    /// two transactions conflict iff they share a view, so a concurrent
    /// commit policy that legally reorders independent same-group
    /// transactions (disjoint view sets) is not flagged, and cross-group
    /// commits never conflict. An inversion along a *shared* view is a
    /// real ordering bug under every policy.
    pub fn on_commit(
        &mut self,
        group: usize,
        seq: TxnSeq,
        views: impl IntoIterator<Item = ViewId>,
        stamp: &VectorClock,
    ) -> VectorClock {
        self.commit_serial += 1;
        let mut clock = stamp.clone();
        let mut serial = VectorClock::new();
        serial.0.insert(WAREHOUSE_PID, self.commit_serial);
        clock.join(&serial);
        // One violation per conflicting predecessor, not one per shared
        // view of the same predecessor pair.
        let mut flagged: std::collections::BTreeSet<TxnSeq> = std::collections::BTreeSet::new();
        for view in views {
            if let Some((prev_seq, prev_clock)) = self.last_commit.get(&(group, view)) {
                let seq_inverted = seq <= *prev_seq;
                if (seq_inverted || !clock.dominates(prev_clock)) && flagged.insert(*prev_seq) {
                    self.violations.push(HbViolation::CommitOrderInversion {
                        group,
                        earlier: *prev_seq,
                        later: seq,
                        seq_inverted,
                    });
                }
            }
            self.last_commit.insert((group, view), (seq, clock.clone()));
        }
        clock
    }

    /// Record a paint transition of VUT cell `(update, view)` in `group`
    /// at clock `stamp`. Transitions of one cell must be totally ordered.
    pub fn on_paint(&mut self, group: usize, view: ViewId, update: UpdateId, stamp: &VectorClock) {
        let key = (group, view, update);
        if let Some(prev) = self.last_paint.get(&key) {
            if !stamp.dominates(prev) {
                self.violations.push(HbViolation::UnorderedPaint {
                    group,
                    view,
                    update,
                });
            }
        }
        self.last_paint.insert(key, stamp.clone());
    }

    /// Record the publication of the multi-view cut at `watermark`,
    /// stamped with the publishing commit's clock (the return value of
    /// [`HbState::on_commit`]). Publication happens under the commit
    /// lock, so the stamp is exactly the causal past a reader must carry
    /// to legitimately observe this watermark.
    pub fn on_publish(&mut self, watermark: u64, stamp: &VectorClock) {
        self.publishes.insert(watermark, stamp.clone());
    }

    /// Record a certified read by `session` of the cut at `watermark`,
    /// with the reader's clock *after* joining the publish stamp it
    /// obtained through the version store. The read must be
    /// happens-after the commit that produced its watermark.
    pub fn on_read(&mut self, session: u64, watermark: u64, clock: &VectorClock) {
        if let Some(publish) = self.publishes.get(&watermark) {
            if !clock.dominates(publish) {
                self.violations
                    .push(HbViolation::StaleRead { session, watermark });
            }
        }
        let entry = self
            .read_joins
            .entry(watermark)
            .or_insert_with(|| (0, VectorClock::new()));
        entry.0 += 1;
        entry.1.join(clock);
    }

    /// Record that every version strictly below `floor` was pruned by a
    /// collector whose clock is `clock` (the pruning commit's clock
    /// joined with the GC license — the pin stamps that allowed the
    /// floor to advance). Every recorded read of a pruned version must
    /// be in that clock's causal past. Tracked state below the floor is
    /// dropped afterwards, so the audit's footprint follows retention.
    pub fn on_gc_below(&mut self, floor: u64, clock: &VectorClock) {
        let keep = self.read_joins.split_off(&floor);
        for (watermark, (reads, join)) in std::mem::replace(&mut self.read_joins, keep) {
            if !clock.dominates(&join) {
                self.violations
                    .push(HbViolation::ReadAfterGc { watermark, reads });
            }
        }
        self.publishes = self.publishes.split_off(&floor);
    }

    pub fn violations(&self) -> &[HbViolation] {
        &self.violations
    }

    pub fn take_violations(&mut self) -> Vec<HbViolation> {
        std::mem::take(&mut self.violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(entries: &[(u32, u64)]) -> VectorClock {
        let mut c = VectorClock::new();
        for &(pid, t) in entries {
            c.0.insert(pid, t);
        }
        c
    }

    #[test]
    fn vector_clock_ordering() {
        let a = clock(&[(0, 1), (1, 2)]);
        let b = clock(&[(0, 2), (1, 2)]);
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        let c = clock(&[(0, 0), (1, 3)]);
        assert!(a.concurrent_with(&c));
        let mut j = a.clone();
        j.join(&c);
        assert!(j.dominates(&a) && j.dominates(&c));
        assert_eq!(j.component(1), 3);
    }

    #[test]
    fn ordered_commits_pass() {
        let mut hb = HbState::new();
        let c1 = hb.on_commit(0, TxnSeq(1), [ViewId(1)], &clock(&[(5, 1)]));
        // The second commit's stamp includes the first commit's clock —
        // the MP saw the ack before releasing the dependent txn.
        let mut s2 = c1;
        s2.tick(5);
        hb.on_commit(0, TxnSeq(2), [ViewId(1)], &s2);
        assert!(hb.violations().is_empty());
    }

    #[test]
    fn seq_inversion_detected() {
        let mut hb = HbState::new();
        let c1 = hb.on_commit(0, TxnSeq(2), [ViewId(1)], &clock(&[(5, 1)]));
        let mut s2 = c1;
        s2.tick(5);
        hb.on_commit(0, TxnSeq(1), [ViewId(1)], &s2);
        assert_eq!(hb.violations().len(), 1);
        match &hb.violations()[0] {
            HbViolation::CommitOrderInversion {
                group,
                earlier,
                later,
                seq_inverted,
            } => {
                assert_eq!(
                    (*group, *earlier, *later, *seq_inverted),
                    (0, TxnSeq(2), TxnSeq(1), true)
                );
            }
            other => panic!("wrong violation: {other}"),
        }
    }

    #[test]
    fn concurrent_commit_clocks_detected() {
        let mut hb = HbState::new();
        hb.on_commit(1, TxnSeq(1), [ViewId(1)], &clock(&[(5, 4)]));
        // Right sequence order, but the second stamp does not include the
        // first commit's causal past: a synchronization gap.
        hb.on_commit(1, TxnSeq(2), [ViewId(1)], &clock(&[(6, 1)]));
        assert_eq!(hb.violations().len(), 1);
        assert!(matches!(
            hb.violations()[0],
            HbViolation::CommitOrderInversion {
                seq_inverted: false,
                ..
            }
        ));
        // Distinct groups never conflict.
        hb.on_commit(2, TxnSeq(1), [ViewId(1)], &clock(&[(7, 1)]));
        assert_eq!(hb.violations().len(), 1);
    }

    /// Per-group dominance at §4.3 granularity: two same-group commits
    /// with *disjoint* view sets are independent, so a concurrent commit
    /// policy reordering them (sequence inverted, clocks concurrent) is
    /// legal and must not be flagged.
    #[test]
    fn same_group_disjoint_views_reorder_not_flagged() {
        let mut hb = HbState::new();
        hb.on_commit(0, TxnSeq(2), [ViewId(1)], &clock(&[(5, 1)]));
        hb.on_commit(0, TxnSeq(1), [ViewId(2)], &clock(&[(6, 1)]));
        assert!(
            hb.violations().is_empty(),
            "independent same-group commits may reorder: {:?}",
            hb.violations()
        );
        // …but a later commit sharing a view with either predecessor is
        // dependent and must dominate it.
        hb.on_commit(0, TxnSeq(3), [ViewId(1), ViewId(3)], &clock(&[(7, 1)]));
        assert_eq!(hb.violations().len(), 1);
        assert!(matches!(
            hb.violations()[0],
            HbViolation::CommitOrderInversion {
                seq_inverted: false,
                ..
            }
        ));
    }

    /// The negative test the sharding issue demands: a cross-group
    /// "inversion" (later seq in one group commits before an earlier seq
    /// in another) is not a conflict — groups have disjoint footprints —
    /// and must never be flagged.
    #[test]
    fn cross_group_inversion_not_flagged() {
        let mut hb = HbState::new();
        hb.on_commit(0, TxnSeq(5), [ViewId(1)], &clock(&[(5, 1)]));
        // Group 1's earlier-numbered txn lands after, clocks concurrent.
        hb.on_commit(1, TxnSeq(2), [ViewId(2)], &clock(&[(6, 1)]));
        // And a genuinely inverted same-numbered pair across groups.
        hb.on_commit(1, TxnSeq(1), [ViewId(3)], &clock(&[(7, 1)]));
        assert!(
            hb.violations().is_empty(),
            "cross-group commits never conflict: {:?}",
            hb.violations()
        );
    }

    /// One conflicting predecessor produces one violation even when the
    /// two commits share several views.
    #[test]
    fn shared_view_inversion_flagged_once() {
        let mut hb = HbState::new();
        hb.on_commit(0, TxnSeq(2), [ViewId(1), ViewId(2)], &clock(&[(5, 1)]));
        hb.on_commit(0, TxnSeq(1), [ViewId(1), ViewId(2)], &clock(&[(6, 1)]));
        assert_eq!(hb.violations().len(), 1);
        match &hb.violations()[0] {
            HbViolation::CommitOrderInversion {
                group,
                earlier,
                later,
                seq_inverted,
            } => assert_eq!(
                (*group, *earlier, *later, *seq_inverted),
                (0, TxnSeq(2), TxnSeq(1), true)
            ),
            other => panic!("wrong violation: {other}"),
        }
    }

    #[test]
    fn read_joining_publish_stamp_is_clean() {
        let mut hb = HbState::new();
        let ack = hb.on_commit(0, TxnSeq(1), [ViewId(1)], &clock(&[(5, 1)]));
        hb.on_publish(1, &ack);
        // The reader resolved the cut through the version store and
        // joined the publish stamp it found there.
        let mut r = clock(&[(2000, 3)]);
        r.join(&ack);
        hb.on_read(7, 1, &r);
        assert!(hb.violations().is_empty());
    }

    /// The negative test the issue demands: a synthetically stale cut —
    /// the watermark reaches a reader without the publishing commit's
    /// stamp in the reader's past — trips the read-path check.
    #[test]
    fn stale_cut_trips_read_path_check() {
        let mut hb = HbState::new();
        let ack = hb.on_commit(0, TxnSeq(1), [ViewId(1)], &clock(&[(5, 1)]));
        hb.on_publish(1, &ack);
        // Reader clock concurrent with the publish stamp: watermark 1
        // escaped before its commit stamp.
        hb.on_read(9, 1, &clock(&[(2000, 4)]));
        assert_eq!(hb.violations().len(), 1);
        match &hb.violations()[0] {
            HbViolation::StaleRead { session, watermark } => {
                assert_eq!((*session, *watermark), (9, 1));
            }
            other => panic!("wrong violation: {other}"),
        }
        assert!(hb.violations()[0].is_read_path());
        let msg = hb.violations()[0].to_string();
        assert!(
            msg.contains("session 9") && msg.contains("watermark 1"),
            "{msg}"
        );
    }

    #[test]
    fn gc_dominating_all_reads_is_clean_and_prunes_state() {
        let mut hb = HbState::new();
        let a1 = hb.on_commit(0, TxnSeq(1), [ViewId(1)], &clock(&[(5, 1)]));
        hb.on_publish(1, &a1);
        let mut r = clock(&[(2000, 1)]);
        r.join(&a1);
        hb.on_read(1, 1, &r);
        // The collector's clock includes the reader's pin stamp (the GC
        // license) plus the pruning commit's own clock.
        let mut gc = hb.on_commit(0, TxnSeq(2), [ViewId(1)], &{
            let mut s = a1.clone();
            s.tick(5);
            s
        });
        gc.join(&r);
        hb.on_publish(2, &gc);
        hb.on_gc_below(2, &gc);
        assert!(hb.violations().is_empty());
        // Pruned watermark is forgotten: a later read of it is unchecked.
        hb.on_read(2, 1, &clock(&[(2001, 1)]));
        assert!(hb.violations().is_empty());
    }

    #[test]
    fn gc_without_read_in_past_detected() {
        let mut hb = HbState::new();
        let a1 = hb.on_commit(0, TxnSeq(1), [ViewId(1)], &clock(&[(5, 1)]));
        hb.on_publish(1, &a1);
        let mut r = clock(&[(2000, 1)]);
        r.join(&a1);
        hb.on_read(1, 1, &r);
        hb.on_read(1, 1, &{
            let mut r2 = r.clone();
            r2.tick(2000);
            r2
        });
        // Collector advances the floor without the reader's clock — no
        // license joined in: both reads of watermark 1 are unprotected.
        let gc = hb.on_commit(0, TxnSeq(2), [ViewId(1)], &{
            let mut s = a1.clone();
            s.tick(5);
            s
        });
        hb.on_gc_below(2, &gc);
        assert_eq!(hb.violations().len(), 1);
        match &hb.violations()[0] {
            HbViolation::ReadAfterGc { watermark, reads } => {
                assert_eq!((*watermark, *reads), (1, 2));
            }
            other => panic!("wrong violation: {other}"),
        }
        assert!(hb.violations()[0].is_read_path());
    }

    #[test]
    fn unordered_paint_detected() {
        let mut hb = HbState::new();
        let cell = (ViewId(3), UpdateId(7));
        hb.on_paint(0, cell.0, cell.1, &clock(&[(5, 1)]));
        let mut later = clock(&[(5, 2)]);
        hb.on_paint(0, cell.0, cell.1, &later);
        assert!(hb.violations().is_empty());
        // A concurrent stamp on the same cell is a violation…
        hb.on_paint(0, cell.0, cell.1, &clock(&[(9, 1)]));
        assert_eq!(hb.violations().len(), 1);
        // …but other cells are independent.
        later.tick(9);
        hb.on_paint(0, ViewId(4), UpdateId(7), &later);
        assert_eq!(hb.violations().len(), 1);
    }
}
