//! The ViewUpdateTable (VUT) of §4.1/§5.1.
//!
//! `VUT[i, x]` tracks the status of update `Ui` with respect to view `Vx`:
//!
//! * **white** — waiting for the corresponding action list;
//! * **red** — action list received, held until it can be applied;
//! * **gray** — action list applied to the warehouse;
//! * **black** — the update is irrelevant to the view.
//!
//! The Painting Algorithm additionally stores a `state` per entry: the
//! update id the view will jump to when the covering (batched) action list
//! is applied.
//!
//! Rows are purged as soon as every entry is black or gray, so in a system
//! where no view manager is a bottleneck the table stays small (§4.2).

use crate::action::ActionList;
use crate::error::MergeError;
use crate::ids::{UpdateId, ViewId};
use crate::snapshot::{PaintEvent, VutSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Entry colors (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Color {
    White,
    Red,
    Gray,
    Black,
}

impl Color {
    /// The single-letter rendering used in the paper's tables.
    pub fn letter(self) -> char {
        match self {
            Color::White => 'w',
            Color::Red => 'r',
            Color::Gray => 'g',
            Color::Black => 'b',
        }
    }

    /// Full name, for error messages.
    pub fn name(self) -> &'static str {
        match self {
            Color::White => "white",
            Color::Red => "red",
            Color::Gray => "gray",
            Color::Black => "black",
        }
    }
}

/// One `VUT[i, x]` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    pub color: Color,
    /// PA only: the state this entry's view jumps to (0 = unset).
    pub state: UpdateId,
}

impl Entry {
    fn new(color: Color) -> Entry {
        Entry {
            color,
            state: UpdateId::ZERO,
        }
    }
}

/// The ViewUpdateTable plus the `WT` buffers holding received action lists.
#[derive(Debug, Clone)]
pub struct Vut<P> {
    /// All view-manager columns, ascending. Fixed at construction (the
    /// architecture allows adding views on the fly; that is modelled by
    /// building a new merge process in the runtime layer).
    views: Vec<ViewId>,
    /// Live rows: update id → per-view entry.
    rows: BTreeMap<UpdateId, BTreeMap<ViewId, Entry>>,
    /// `WT_i`: action lists received for row `i` (keyed by `AL.last`).
    /// May be non-empty before the row exists (AL arrived before REL).
    wt: BTreeMap<UpdateId, Vec<ActionList<P>>>,
    /// Per column: rows whose entry is currently red (received,
    /// unapplied). Supports `nextRed`/"previous red" in O(log n).
    red: BTreeMap<ViewId, BTreeSet<UpdateId>>,
    /// Opt-in paint-transition sink for the durability WAL (`None` = off,
    /// zero cost on the non-durable path).
    events: Option<Vec<PaintEvent>>,
}

impl<P> Vut<P> {
    /// Create a VUT with the given view columns.
    pub fn new(views: impl IntoIterator<Item = ViewId>) -> Self {
        let mut views: Vec<ViewId> = views.into_iter().collect();
        views.sort_unstable();
        views.dedup();
        let red = views.iter().map(|&v| (v, BTreeSet::new())).collect();
        Vut {
            views,
            rows: BTreeMap::new(),
            wt: BTreeMap::new(),
            red,
            events: None,
        }
    }

    /// Start buffering paint transitions (durability hook).
    pub fn enable_events(&mut self) {
        if self.events.is_none() {
            self.events = Some(Vec::new());
        }
    }

    /// Drain buffered paint transitions (empty when the sink is off).
    pub fn take_events(&mut self) -> Vec<PaintEvent> {
        self.events.as_mut().map(std::mem::take).unwrap_or_default()
    }

    pub fn views(&self) -> &[ViewId] {
        &self.views
    }

    pub fn has_view(&self, x: ViewId) -> bool {
        self.views.binary_search(&x).is_ok()
    }

    /// Add a view column on the fly (§1.2). Existing rows get black
    /// entries — updates numbered before the view existed are irrelevant
    /// to it by definition.
    pub fn add_view(&mut self, x: ViewId) {
        if self.has_view(x) {
            return;
        }
        let pos = self.views.partition_point(|&v| v < x);
        self.views.insert(pos, x);
        self.red.insert(x, BTreeSet::new());
        for row in self.rows.values_mut() {
            row.insert(x, Entry::new(Color::Black));
        }
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.wt.is_empty()
    }

    pub fn row_ids(&self) -> impl Iterator<Item = UpdateId> + '_ {
        self.rows.keys().copied()
    }

    pub fn has_row(&self, i: UpdateId) -> bool {
        self.rows.contains_key(&i)
    }

    /// Allocate row `i`: white for views in `relevant`, black otherwise
    /// (SPA/PA step on receiving `REL_i`).
    pub fn insert_row(&mut self, i: UpdateId, relevant: &BTreeSet<ViewId>) {
        debug_assert!(!self.rows.contains_key(&i), "row {i} inserted twice");
        let entries = self
            .views
            .iter()
            .map(|&v| {
                let color = if relevant.contains(&v) {
                    Color::White
                } else {
                    Color::Black
                };
                (v, Entry::new(color))
            })
            .collect();
        self.rows.insert(i, entries);
    }

    pub fn entry(&self, i: UpdateId, x: ViewId) -> Option<Entry> {
        self.rows.get(&i).and_then(|r| r.get(&x)).copied()
    }

    pub fn color(&self, i: UpdateId, x: ViewId) -> Option<Color> {
        self.entry(i, x).map(|e| e.color)
    }

    /// Set `VUT[i,x]` red, recording the PA jump state (pass `i` itself
    /// for SPA). A missing cell or a non-white entry is a protocol
    /// violation reported as a typed error, so a malformed or duplicate
    /// action list degrades to an error instead of crashing the merge
    /// process thread.
    pub fn set_red(&mut self, i: UpdateId, x: ViewId, state: UpdateId) -> Result<(), MergeError> {
        let e = self.rows.get_mut(&i).and_then(|r| r.get_mut(&x)).ok_or(
            MergeError::VutMissingEntry {
                update: i,
                view: x,
                op: "set_red",
            },
        )?;
        if e.color != Color::White {
            return Err(MergeError::VutColorConflict {
                update: i,
                view: x,
                op: "set_red",
                expected: Color::White.name(),
                found: e.color.name(),
            });
        }
        e.color = Color::Red;
        e.state = state;
        self.red.get_mut(&x).expect("known view").insert(i);
        if let Some(events) = &mut self.events {
            events.push(PaintEvent {
                update: i,
                view: x,
                color: Color::Red,
                state,
            });
        }
        Ok(())
    }

    /// Turn a red entry gray (applied). Same typed-error contract as
    /// [`Vut::set_red`].
    pub fn set_gray(&mut self, i: UpdateId, x: ViewId) -> Result<(), MergeError> {
        let e = self.rows.get_mut(&i).and_then(|r| r.get_mut(&x)).ok_or(
            MergeError::VutMissingEntry {
                update: i,
                view: x,
                op: "set_gray",
            },
        )?;
        if e.color != Color::Red {
            return Err(MergeError::VutColorConflict {
                update: i,
                view: x,
                op: "set_gray",
                expected: Color::Red.name(),
                found: e.color.name(),
            });
        }
        e.color = Color::Gray;
        let state = e.state;
        self.red.get_mut(&x).expect("known view").remove(&i);
        if let Some(events) = &mut self.events {
            events.push(PaintEvent {
                update: i,
                view: x,
                color: Color::Gray,
                state,
            });
        }
        Ok(())
    }

    /// Store a received action list in `WT_{al.last}`.
    pub fn store_action(&mut self, al: ActionList<P>) {
        self.wt.entry(al.last).or_default().push(al);
    }

    /// Remove and return `WT_i`, ordered by view id.
    pub fn take_wt(&mut self, i: UpdateId) -> Vec<ActionList<P>> {
        let mut als = self.wt.remove(&i).unwrap_or_default();
        als.sort_by_key(|al| al.view);
        als
    }

    /// Peek at `WT_i`.
    pub fn wt(&self, i: UpdateId) -> &[ActionList<P>] {
        self.wt.get(&i).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `nextRed(i, x)`: the next row below `VUT[i,x]` with a red entry in
    /// column `x` (the paper returns 0 when none; we return `None`).
    pub fn next_red(&self, i: UpdateId, x: ViewId) -> Option<UpdateId> {
        self.red
            .get(&x)?
            .range((std::ops::Bound::Excluded(i), std::ops::Bound::Unbounded))
            .next()
            .copied()
    }

    /// Red rows strictly before `i` in column `x` (ascending).
    pub fn reds_before(&self, i: UpdateId, x: ViewId) -> Vec<UpdateId> {
        self.red
            .get(&x)
            .map(|s| s.range(..i).copied().collect())
            .unwrap_or_default()
    }

    /// Does row `i` contain any white entry? (`ProcessRow` line 1.)
    pub fn row_has_white(&self, i: UpdateId) -> bool {
        self.rows
            .get(&i)
            .map(|r| r.values().any(|e| e.color == Color::White))
            .unwrap_or(false)
    }

    /// Views whose entry in row `i` is red.
    pub fn reds_in_row(&self, i: UpdateId) -> Vec<ViewId> {
        self.rows
            .get(&i)
            .map(|r| {
                r.iter()
                    .filter(|(_, e)| e.color == Color::Red)
                    .map(|(&v, _)| v)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Views whose entry in row `i` is gray.
    pub fn grays_in_row(&self, i: UpdateId) -> Vec<ViewId> {
        self.rows
            .get(&i)
            .map(|r| {
                r.iter()
                    .filter(|(_, e)| e.color == Color::Gray)
                    .map(|(&v, _)| v)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// PA: entries in row `i` whose jump state exceeds `i`
    /// (`ProcessRow` line 5). Returns the distinct target states.
    pub fn jump_targets(&self, i: UpdateId) -> Vec<UpdateId> {
        let mut out: Vec<UpdateId> = self
            .rows
            .get(&i)
            .map(|r| {
                r.values()
                    .filter(|e| e.color == Color::Red && e.state > i)
                    .map(|e| e.state)
                    .collect()
            })
            .unwrap_or_default();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// White entries in column `x` at rows `<= j` (PA `ProcessAction`).
    pub fn whites_up_to(&self, j: UpdateId, x: ViewId) -> Vec<UpdateId> {
        self.rows
            .range(..=j)
            .filter(|(_, r)| r.get(&x).map(|e| e.color == Color::White).unwrap_or(false))
            .map(|(&i, _)| i)
            .collect()
    }

    /// Remove row `i` (must contain no white or red entries).
    pub fn purge_row(&mut self, i: UpdateId) {
        if let Some(row) = self.rows.remove(&i) {
            debug_assert!(
                row.values()
                    .all(|e| matches!(e.color, Color::Gray | Color::Black)),
                "purging row {i} with unapplied entries"
            );
        }
        self.wt.remove(&i);
    }

    /// Purge every row whose entries are all gray or black (PA line 10).
    pub fn purge_applied(&mut self) -> Vec<UpdateId> {
        let purgeable: Vec<UpdateId> = self
            .rows
            .iter()
            .filter(|(_, r)| {
                r.values()
                    .all(|e| matches!(e.color, Color::Gray | Color::Black))
            })
            .map(|(&i, _)| i)
            .collect();
        for &i in &purgeable {
            self.purge_row(i);
        }
        purgeable
    }

    /// Capture the table for a durability checkpoint. The red index is
    /// derivable from `rows` and is rebuilt by [`Vut::from_snapshot`].
    pub fn snapshot(&self) -> VutSnapshot<P>
    where
        P: Clone,
    {
        VutSnapshot {
            views: self.views.clone(),
            rows: self.rows.clone(),
            wt: self.wt.clone(),
        }
    }

    /// Rebuild a table from a checkpoint snapshot (event sink off).
    pub fn from_snapshot(s: VutSnapshot<P>) -> Self {
        let mut red: BTreeMap<ViewId, BTreeSet<UpdateId>> =
            s.views.iter().map(|&v| (v, BTreeSet::new())).collect();
        for (&i, row) in &s.rows {
            for (&v, e) in row {
                if e.color == Color::Red {
                    red.entry(v).or_default().insert(i);
                }
            }
        }
        Vut {
            views: s.views,
            rows: s.rows,
            wt: s.wt,
            red,
            events: None,
        }
    }

    /// Render the table in the paper's style. With `with_state`, entries
    /// print as `(w,0)` (PA examples); otherwise as single letters (SPA).
    pub fn render(&self, with_state: bool) -> String {
        let mut out = String::new();
        out.push_str("      ");
        for v in &self.views {
            let _ = write!(out, "{:>8}", format!("V{}", v.0));
        }
        out.push_str("  | WT\n");
        for (i, row) in &self.rows {
            let _ = write!(out, "{:<6}", format!("U{}", i.0));
            for v in &self.views {
                let e = row[v];
                let cell = if with_state {
                    format!("({},{})", e.color.letter(), e.state.0)
                } else {
                    e.color.letter().to_string()
                };
                let _ = write!(out, "{cell:>8}");
            }
            let names: Vec<String> = self.wt(*i).iter().map(|al| al.to_string()).collect();
            let _ = writeln!(out, "  | {{{}}}", names.join(", "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: u32) -> Vec<ViewId> {
        (1..=n).map(ViewId).collect()
    }

    fn set(ids: &[u32]) -> BTreeSet<ViewId> {
        ids.iter().map(|&v| ViewId(v)).collect()
    }

    #[test]
    fn insert_row_colors_by_relevance() {
        // Example 2: U1 on S → V1, V2 white, V3 black
        let mut vut: Vut<()> = Vut::new(views(3));
        vut.insert_row(UpdateId(1), &set(&[1, 2]));
        assert_eq!(vut.color(UpdateId(1), ViewId(1)), Some(Color::White));
        assert_eq!(vut.color(UpdateId(1), ViewId(2)), Some(Color::White));
        assert_eq!(vut.color(UpdateId(1), ViewId(3)), Some(Color::Black));
    }

    #[test]
    fn red_tracking_and_next_red() {
        let mut vut: Vut<()> = Vut::new(views(2));
        for i in 1..=4 {
            vut.insert_row(UpdateId(i), &set(&[1]));
        }
        vut.set_red(UpdateId(2), ViewId(1), UpdateId(2)).unwrap();
        vut.set_red(UpdateId(4), ViewId(1), UpdateId(4)).unwrap();
        assert_eq!(vut.next_red(UpdateId(1), ViewId(1)), Some(UpdateId(2)));
        assert_eq!(vut.next_red(UpdateId(2), ViewId(1)), Some(UpdateId(4)));
        assert_eq!(vut.next_red(UpdateId(4), ViewId(1)), None);
        assert_eq!(vut.reds_before(UpdateId(4), ViewId(1)), vec![UpdateId(2)]);
        vut.set_gray(UpdateId(2), ViewId(1)).unwrap();
        assert_eq!(vut.next_red(UpdateId(1), ViewId(1)), Some(UpdateId(4)));
    }

    #[test]
    fn wt_storage_ordering() {
        let mut vut: Vut<&'static str> = Vut::new(views(3));
        vut.store_action(ActionList::single(ViewId(2), UpdateId(1), "b"));
        vut.store_action(ActionList::single(ViewId(1), UpdateId(1), "a"));
        let wt = vut.take_wt(UpdateId(1));
        assert_eq!(wt.len(), 2);
        assert_eq!(wt[0].view, ViewId(1), "sorted by view id");
        assert!(vut.wt(UpdateId(1)).is_empty());
    }

    #[test]
    fn row_white_and_reds() {
        let mut vut: Vut<()> = Vut::new(views(3));
        vut.insert_row(UpdateId(1), &set(&[1, 2]));
        assert!(vut.row_has_white(UpdateId(1)));
        vut.set_red(UpdateId(1), ViewId(1), UpdateId(1)).unwrap();
        assert!(vut.row_has_white(UpdateId(1)), "V2 still white");
        vut.set_red(UpdateId(1), ViewId(2), UpdateId(1)).unwrap();
        assert!(!vut.row_has_white(UpdateId(1)));
        assert_eq!(vut.reds_in_row(UpdateId(1)), vec![ViewId(1), ViewId(2)]);
    }

    #[test]
    fn purge_applied_rows_only() {
        let mut vut: Vut<()> = Vut::new(views(2));
        vut.insert_row(UpdateId(1), &set(&[1]));
        vut.insert_row(UpdateId(2), &set(&[2]));
        vut.set_red(UpdateId(1), ViewId(1), UpdateId(1)).unwrap();
        vut.set_gray(UpdateId(1), ViewId(1)).unwrap();
        let purged = vut.purge_applied();
        assert_eq!(purged, vec![UpdateId(1)]);
        assert!(!vut.has_row(UpdateId(1)));
        assert!(vut.has_row(UpdateId(2)), "white row kept");
    }

    #[test]
    fn whites_up_to_column() {
        let mut vut: Vut<()> = Vut::new(views(1));
        for i in 1..=3 {
            vut.insert_row(UpdateId(i), &set(&[1]));
        }
        vut.set_red(UpdateId(2), ViewId(1), UpdateId(2)).unwrap();
        assert_eq!(
            vut.whites_up_to(UpdateId(3), ViewId(1)),
            vec![UpdateId(1), UpdateId(3)]
        );
        assert_eq!(vut.whites_up_to(UpdateId(1), ViewId(1)), vec![UpdateId(1)]);
    }

    #[test]
    fn jump_targets_pa() {
        let mut vut: Vut<()> = Vut::new(views(2));
        vut.insert_row(UpdateId(1), &set(&[1, 2]));
        vut.set_red(UpdateId(1), ViewId(1), UpdateId(3)).unwrap();
        vut.set_red(UpdateId(1), ViewId(2), UpdateId(1)).unwrap();
        assert_eq!(vut.jump_targets(UpdateId(1)), vec![UpdateId(3)]);
    }

    #[test]
    fn render_spa_style() {
        let mut vut: Vut<()> = Vut::new(views(3));
        vut.insert_row(UpdateId(1), &set(&[1, 2]));
        vut.store_action(ActionList::single(ViewId(2), UpdateId(1), ()));
        vut.set_red(UpdateId(1), ViewId(2), UpdateId(1)).unwrap();
        let s = vut.render(false);
        assert!(s.contains("U1"), "{s}");
        assert!(s.contains('w') && s.contains('r') && s.contains('b'), "{s}");
        assert!(s.contains("AL2_1"), "{s}");
    }

    #[test]
    fn render_pa_style_has_states() {
        let mut vut: Vut<()> = Vut::new(views(1));
        vut.insert_row(UpdateId(1), &set(&[1]));
        vut.set_red(UpdateId(1), ViewId(1), UpdateId(3)).unwrap();
        let s = vut.render(true);
        assert!(s.contains("(r,3)"), "{s}");
    }

    #[test]
    fn set_red_missing_row_is_typed_error() {
        let mut vut: Vut<()> = Vut::new(views(1));
        let err = vut
            .set_red(UpdateId(1), ViewId(1), UpdateId(1))
            .unwrap_err();
        assert_eq!(
            err,
            MergeError::VutMissingEntry {
                update: UpdateId(1),
                view: ViewId(1),
                op: "set_red",
            }
        );
        assert_eq!(err.to_string(), "set_red on missing entry [U1,V1]");
    }

    #[test]
    fn set_red_twice_is_color_conflict() {
        let mut vut: Vut<()> = Vut::new(views(1));
        vut.insert_row(UpdateId(1), &set(&[1]));
        vut.set_red(UpdateId(1), ViewId(1), UpdateId(1)).unwrap();
        let err = vut
            .set_red(UpdateId(1), ViewId(1), UpdateId(1))
            .unwrap_err();
        assert_eq!(
            err,
            MergeError::VutColorConflict {
                update: UpdateId(1),
                view: ViewId(1),
                op: "set_red",
                expected: "white",
                found: "red",
            }
        );
        // A gray (already applied) entry cannot be re-applied either.
        vut.set_gray(UpdateId(1), ViewId(1)).unwrap();
        let err = vut.set_gray(UpdateId(1), ViewId(1)).unwrap_err();
        assert!(matches!(
            err,
            MergeError::VutColorConflict {
                op: "set_gray",
                found: "gray",
                ..
            }
        ));
    }
}
