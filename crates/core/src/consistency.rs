//! Consistency levels (§2) and the merge-algorithm selection rule (§6.3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The single-view consistency level a view manager guarantees for the
/// action lists it emits. Ordered weakest → strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsistencyLevel {
    /// Only eventual correctness: intermediate view states may correspond
    /// to no source state (§6.3).
    Convergent,
    /// Every emitted AL moves the view between states that each reflect a
    /// consistent source state, in order; several source updates may be
    /// batched into one AL (strong consistency, §2.2).
    Strong,
    /// Strong, processing exactly N source updates per AL (§6.3).
    CompleteN(u32),
    /// Strong and one AL per relevant source update: every source state is
    /// reflected (completeness, §2.2).
    Complete,
}

impl ConsistencyLevel {
    /// Rank for weakest-of comparison. `CompleteN` sits between Strong and
    /// Complete: it hits every Nth state deterministically.
    fn rank(self) -> u8 {
        match self {
            ConsistencyLevel::Convergent => 0,
            ConsistencyLevel::Strong => 1,
            ConsistencyLevel::CompleteN(_) => 2,
            ConsistencyLevel::Complete => 3,
        }
    }

    /// The weaker of two levels (two different `CompleteN`s weaken to
    /// `Strong`, since their batch boundaries do not line up).
    pub fn weakest(self, other: ConsistencyLevel) -> ConsistencyLevel {
        use ConsistencyLevel::*;
        match (self, other) {
            (CompleteN(a), CompleteN(b)) if a != b => Strong,
            (a, b) => {
                if a.rank() <= b.rank() {
                    a
                } else {
                    b
                }
            }
        }
    }

    /// Weakest level of a whole system of view managers (`Complete` for an
    /// empty system — vacuously the strongest).
    pub fn weakest_of<I: IntoIterator<Item = ConsistencyLevel>>(levels: I) -> ConsistencyLevel {
        levels
            .into_iter()
            .fold(ConsistencyLevel::Complete, ConsistencyLevel::weakest)
    }
}

impl fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyLevel::Convergent => write!(f, "convergent"),
            ConsistencyLevel::Strong => write!(f, "strong"),
            ConsistencyLevel::CompleteN(n) => write!(f, "complete-{n}"),
            ConsistencyLevel::Complete => write!(f, "complete"),
        }
    }
}

/// Which coordination algorithm the merge process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MergeAlgorithm {
    /// Simple Painting Algorithm (Algorithm 1) — requires complete view
    /// managers; yields MVC completeness.
    Spa,
    /// Painting Algorithm (Algorithm 2) — works with strongly consistent
    /// (and complete) view managers; yields MVC strong consistency.
    Pa,
    /// No coordination: forward every AL immediately. Only sound when all
    /// managers are merely convergent (§6.3) — yields MVC convergence.
    PassThrough,
}

impl MergeAlgorithm {
    /// §6.3: "it is always possible to use the merge algorithm
    /// corresponding to the view manager guaranteeing the weakest level of
    /// consistency."
    pub fn for_weakest(level: ConsistencyLevel) -> MergeAlgorithm {
        match level {
            ConsistencyLevel::Complete => MergeAlgorithm::Spa,
            ConsistencyLevel::Strong | ConsistencyLevel::CompleteN(_) => MergeAlgorithm::Pa,
            ConsistencyLevel::Convergent => MergeAlgorithm::PassThrough,
        }
    }

    /// The MVC level the warehouse history will satisfy under this
    /// algorithm (Theorems 4.1 and 5.1).
    pub fn guarantees(self) -> ConsistencyLevel {
        match self {
            MergeAlgorithm::Spa => ConsistencyLevel::Complete,
            MergeAlgorithm::Pa => ConsistencyLevel::Strong,
            MergeAlgorithm::PassThrough => ConsistencyLevel::Convergent,
        }
    }
}

impl fmt::Display for MergeAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeAlgorithm::Spa => write!(f, "SPA"),
            MergeAlgorithm::Pa => write!(f, "PA"),
            MergeAlgorithm::PassThrough => write!(f, "pass-through"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ConsistencyLevel::*;

    #[test]
    fn weakest_ordering() {
        assert_eq!(Complete.weakest(Strong), Strong);
        assert_eq!(Strong.weakest(Convergent), Convergent);
        assert_eq!(Complete.weakest(Complete), Complete);
        assert_eq!(CompleteN(5).weakest(Complete), CompleteN(5));
    }

    #[test]
    fn mismatched_complete_n_weakens_to_strong() {
        assert_eq!(CompleteN(2).weakest(CompleteN(3)), Strong);
        assert_eq!(CompleteN(2).weakest(CompleteN(2)), CompleteN(2));
    }

    #[test]
    fn weakest_of_system() {
        assert_eq!(
            ConsistencyLevel::weakest_of([Complete, Strong, Complete]),
            Strong
        );
        assert_eq!(ConsistencyLevel::weakest_of([]), Complete);
        assert_eq!(
            ConsistencyLevel::weakest_of([Complete, Convergent]),
            Convergent
        );
    }

    #[test]
    fn algorithm_selection() {
        assert_eq!(MergeAlgorithm::for_weakest(Complete), MergeAlgorithm::Spa);
        assert_eq!(MergeAlgorithm::for_weakest(Strong), MergeAlgorithm::Pa);
        assert_eq!(
            MergeAlgorithm::for_weakest(CompleteN(4)),
            MergeAlgorithm::Pa
        );
        assert_eq!(
            MergeAlgorithm::for_weakest(Convergent),
            MergeAlgorithm::PassThrough
        );
    }

    #[test]
    fn guarantees_match_theorems() {
        assert_eq!(MergeAlgorithm::Spa.guarantees(), Complete);
        assert_eq!(MergeAlgorithm::Pa.guarantees(), Strong);
    }
}
