//! Distributing the merge process (§6.1, Figure 3).
//!
//! When the single merge process becomes a bottleneck it can be split:
//! partition the view managers into groups such that the base relations
//! used by one group's views are disjoint from every other group's, and
//! give each group its own merge process. Views that (transitively) share
//! base relations must stay together, so the groups are the connected
//! components of the view–relation bipartite graph — computed here with a
//! union–find over view footprints.

use crate::ids::ViewId;
use std::collections::{BTreeMap, BTreeSet};

/// A computed partitioning: each group is a set of views safe to merge
/// independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning<R: Ord + Clone> {
    groups: Vec<BTreeSet<ViewId>>,
    /// Which group handles each base relation.
    relation_group: BTreeMap<R, usize>,
    /// Which group each view belongs to.
    view_group: BTreeMap<ViewId, usize>,
}

impl<R: Ord + Clone> Partitioning<R> {
    /// Compute the finest valid partitioning from per-view base-relation
    /// footprints.
    ///
    /// ```
    /// use mvc_core::{Partitioning, ViewId};
    /// use std::collections::{BTreeMap, BTreeSet};
    ///
    /// // Figure 3: V1 = R⋈S, V2 = S⋈T, V3 = Q.
    /// let mut fp: BTreeMap<ViewId, BTreeSet<&str>> = BTreeMap::new();
    /// fp.insert(ViewId(1), ["R", "S"].into());
    /// fp.insert(ViewId(2), ["S", "T"].into());
    /// fp.insert(ViewId(3), ["Q"].into());
    /// let p = Partitioning::compute(&fp);
    /// assert_eq!(p.group_count(), 2);
    /// assert_eq!(p.group_of_view(ViewId(1)), p.group_of_view(ViewId(2)));
    /// ```
    pub fn compute(footprints: &BTreeMap<ViewId, BTreeSet<R>>) -> Self {
        let views: Vec<ViewId> = footprints.keys().copied().collect();
        let mut uf = UnionFind::new(views.len());
        let index: BTreeMap<ViewId, usize> =
            views.iter().enumerate().map(|(i, &v)| (v, i)).collect();

        // Union views sharing any base relation.
        let mut owner: BTreeMap<&R, usize> = BTreeMap::new();
        for (v, rels) in footprints {
            let vi = index[v];
            for r in rels {
                match owner.get(r) {
                    Some(&other) => uf.union(vi, other),
                    None => {
                        owner.insert(r, vi);
                    }
                }
            }
        }

        // Collect components.
        let mut root_to_group: BTreeMap<usize, usize> = BTreeMap::new();
        let mut groups: Vec<BTreeSet<ViewId>> = Vec::new();
        let mut view_group = BTreeMap::new();
        for (&v, &vi) in &index {
            let root = uf.find(vi);
            let g = *root_to_group.entry(root).or_insert_with(|| {
                groups.push(BTreeSet::new());
                groups.len() - 1
            });
            groups[g].insert(v);
            view_group.insert(v, g);
        }

        let mut relation_group = BTreeMap::new();
        for (v, rels) in footprints {
            let g = view_group[v];
            for r in rels {
                relation_group.insert(r.clone(), g);
            }
        }

        Partitioning {
            groups,
            relation_group,
            view_group,
        }
    }

    /// Number of independent merge processes this partitioning supports.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    pub fn groups(&self) -> &[BTreeSet<ViewId>] {
        &self.groups
    }

    /// The group responsible for a view.
    pub fn group_of_view(&self, v: ViewId) -> Option<usize> {
        self.view_group.get(&v).copied()
    }

    /// The group responsible for updates to a base relation. `None` when
    /// no view reads the relation (such updates are irrelevant everywhere).
    pub fn group_of_relation(&self, r: &R) -> Option<usize> {
        self.relation_group.get(r).copied()
    }

    /// Route a source transaction touching `relations` to merge-process
    /// groups. For single-relation updates this is always one group; a
    /// multi-relation transaction (§6.2) may span several, in which case
    /// per-group MVC still holds but cross-group atomicity needs the
    /// single-merge configuration — callers decide how to handle it.
    pub fn route<'a, I>(&self, relations: I) -> BTreeSet<usize>
    where
        I: IntoIterator<Item = &'a R>,
        R: 'a,
    {
        relations
            .into_iter()
            .filter_map(|r| self.group_of_relation(r))
            .collect()
    }

    /// Coarsen this partitioning to at most `target` groups by folding
    /// the connected components round-robin into super-groups. Unions of
    /// disjoint footprints stay pairwise disjoint across super-groups,
    /// so the result is still a valid partitioning — just coarser. This
    /// is how a runtime caps the number of merge workers it spawns
    /// (the `runtime.groups` knob): correctness never depends on using
    /// the finest partitioning, only on never splitting a component.
    /// `target == 0` is treated as 1; `target >= group_count` is a
    /// no-op clone.
    pub fn coarsen(&self, target: usize) -> Partitioning<R> {
        let target = target.max(1);
        if self.groups.len() <= target {
            return self.clone();
        }
        let fold = |g: usize| g % target;
        let mut groups: Vec<BTreeSet<ViewId>> = vec![BTreeSet::new(); target];
        for (g, views) in self.groups.iter().enumerate() {
            groups[fold(g)].extend(views.iter().copied());
        }
        let view_group = self
            .view_group
            .iter()
            .map(|(&v, &g)| (v, fold(g)))
            .collect();
        let relation_group = self
            .relation_group
            .iter()
            .map(|(r, &g)| (r.clone(), fold(g)))
            .collect();
        Partitioning {
            groups,
            relation_group,
            view_group,
        }
    }

    /// Verify the defining property: group base-relation footprints are
    /// pairwise disjoint. (Exposed for property tests.)
    pub fn is_valid(&self, footprints: &BTreeMap<ViewId, BTreeSet<R>>) -> bool {
        let mut group_rels: Vec<BTreeSet<&R>> = vec![BTreeSet::new(); self.groups.len()];
        for (v, rels) in footprints {
            let Some(g) = self.group_of_view(*v) else {
                return false;
            };
            for r in rels {
                group_rels[g].insert(r);
            }
        }
        for i in 0..group_rels.len() {
            for j in (i + 1)..group_rels.len() {
                if group_rels[i].intersection(&group_rels[j]).next().is_some() {
                    return false;
                }
            }
        }
        true
    }
}

/// Minimal union–find with path compression and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(entries: &[(u32, &[&str])]) -> BTreeMap<ViewId, BTreeSet<String>> {
        entries
            .iter()
            .map(|(v, rels)| (ViewId(*v), rels.iter().map(|s| s.to_string()).collect()))
            .collect()
    }

    /// Figure 3's example: V1 = R ⋈ S, V2 = S ⋈ T, V3 = Q.
    /// V1 and V2 share S → one group; V3 alone → second group.
    #[test]
    fn figure_3_partitioning() {
        let footprints = fp(&[(1, &["R", "S"]), (2, &["S", "T"]), (3, &["Q"])]);
        let p = Partitioning::compute(&footprints);
        assert_eq!(p.group_count(), 2);
        assert_eq!(p.group_of_view(ViewId(1)), p.group_of_view(ViewId(2)));
        assert_ne!(p.group_of_view(ViewId(1)), p.group_of_view(ViewId(3)));
        assert!(p.is_valid(&footprints));
        assert_eq!(
            p.group_of_relation(&"S".to_string()),
            p.group_of_view(ViewId(1))
        );
        assert_eq!(
            p.group_of_relation(&"Q".to_string()),
            p.group_of_view(ViewId(3))
        );
        assert_eq!(p.group_of_relation(&"Z".to_string()), None);
    }

    #[test]
    fn transitive_sharing_collapses() {
        // V1-{A,B}, V2-{B,C}, V3-{C,D}: all transitively connected.
        let footprints = fp(&[(1, &["A", "B"]), (2, &["B", "C"]), (3, &["C", "D"])]);
        let p = Partitioning::compute(&footprints);
        assert_eq!(p.group_count(), 1);
        assert!(p.is_valid(&footprints));
    }

    #[test]
    fn fully_disjoint_views_each_get_a_group() {
        let footprints = fp(&[(1, &["A"]), (2, &["B"]), (3, &["C"]), (4, &["D"])]);
        let p = Partitioning::compute(&footprints);
        assert_eq!(p.group_count(), 4);
        assert!(p.is_valid(&footprints));
    }

    #[test]
    fn route_single_and_multi_relation() {
        let footprints = fp(&[(1, &["R", "S"]), (3, &["Q"])]);
        let p = Partitioning::compute(&footprints);
        let r = "R".to_string();
        let q = "Q".to_string();
        assert_eq!(p.route([&r]).len(), 1);
        let spanning = p.route([&r, &q]);
        assert_eq!(spanning.len(), 2, "multi-relation txn spans groups");
    }

    #[test]
    fn coarsen_folds_components_and_stays_valid() {
        let footprints = fp(&[
            (1, &["A"]),
            (2, &["B"]),
            (3, &["C"]),
            (4, &["D"]),
            (5, &["E"]),
        ]);
        let p = Partitioning::compute(&footprints);
        assert_eq!(p.group_count(), 5);
        let c = p.coarsen(2);
        assert_eq!(c.group_count(), 2);
        assert!(c.is_valid(&footprints));
        // Every view and every relation still routes to exactly one
        // (coarsened) group, consistently.
        for (v, rels) in &footprints {
            let g = c.group_of_view(*v).unwrap();
            for r in rels {
                assert_eq!(c.group_of_relation(r), Some(g));
            }
        }
        // target >= group_count is identity; 0 clamps to 1.
        assert_eq!(p.coarsen(9), p);
        assert_eq!(p.coarsen(0).group_count(), 1);
    }

    #[test]
    fn empty_input() {
        let footprints: BTreeMap<ViewId, BTreeSet<String>> = BTreeMap::new();
        let p = Partitioning::compute(&footprints);
        assert_eq!(p.group_count(), 0);
        assert!(p.is_valid(&footprints));
    }

    #[test]
    fn view_with_empty_footprint_gets_own_group() {
        let mut footprints = fp(&[(1, &["A"])]);
        footprints.insert(ViewId(2), BTreeSet::new());
        let p = Partitioning::compute(&footprints);
        assert_eq!(p.group_count(), 2);
    }
}
