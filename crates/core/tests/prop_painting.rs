//! Property tests for SPA and PA over randomized *legal* message
//! arrivals: random relevance patterns, random batching (PA), and random
//! interleavings of AL arrivals that respect the only ordering guarantee
//! the paper assumes — per-sender FIFO.
//!
//! Invariants checked (independent of the warehouse or any data model):
//! * every update relevant to a view is covered by exactly one applied AL
//!   of that view, in order (no loss, no duplication, no reordering);
//! * a transaction's rows are applied together: all views relevant to a
//!   row advance past it in the same transaction;
//! * per view, the sequence of applied AL frontiers is strictly
//!   increasing;
//! * the engine quiesces exactly when all input has arrived.

use mvc_core::{ActionList, MergeError, Pa, Spa, UpdateId, ViewId, WarehouseTxn};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A generated scenario: per update, the set of relevant views.
#[derive(Debug, Clone)]
struct Scenario {
    views: Vec<ViewId>,
    rel: Vec<BTreeSet<ViewId>>, // index 0 ↔ update 1
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2u32..5, 3usize..14).prop_flat_map(|(nviews, nupd)| {
        let views: Vec<ViewId> = (1..=nviews).map(ViewId).collect();
        proptest::collection::vec(
            proptest::collection::btree_set(1u32..=nviews, 1..=(nviews as usize)),
            nupd..=nupd,
        )
        .prop_map(move |rels| Scenario {
            views: views.clone(),
            rel: rels
                .into_iter()
                .map(|s| s.into_iter().map(ViewId).collect())
                .collect(),
        })
    })
}

/// Per-sender FIFO queues → random interleaving drained by a seeded RNG.
struct Interleaver {
    queues: Vec<VecDeque<Event>>,
    rng: StdRng,
}

#[derive(Debug, Clone)]
enum Event {
    Rel(UpdateId, BTreeSet<ViewId>),
    Action(ActionList<()>),
}

impl Interleaver {
    fn next(&mut self) -> Option<Event> {
        let nonempty: Vec<usize> = self
            .queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| i)
            .collect();
        if nonempty.is_empty() {
            return None;
        }
        let pick = nonempty[self.rng.gen_range(0..nonempty.len())];
        self.queues[pick].pop_front()
    }
}

fn build_queues(sc: &Scenario, batch_seed: Option<u64>) -> Vec<VecDeque<Event>> {
    // queue 0: integrator RELs in order; queue 1..: per-VM ALs in order.
    let mut queues: Vec<VecDeque<Event>> = vec![VecDeque::new(); sc.views.len() + 1];
    for (i, rel) in sc.rel.iter().enumerate() {
        queues[0].push_back(Event::Rel(UpdateId(i as u64 + 1), rel.clone()));
    }
    for (vi, &v) in sc.views.iter().enumerate() {
        let mine: Vec<UpdateId> = sc
            .rel
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains(&v))
            .map(|(i, _)| UpdateId(i as u64 + 1))
            .collect();
        match batch_seed {
            None => {
                for u in mine {
                    queues[vi + 1].push_back(Event::Action(ActionList::single(v, u, ())));
                }
            }
            Some(seed) => {
                // random contiguous batches of this VM's relevant updates
                let mut rng = StdRng::seed_from_u64(seed ^ (v.0 as u64) << 17);
                let mut idx = 0;
                while idx < mine.len() {
                    let take = rng.gen_range(1..=3.min(mine.len() - idx));
                    let first = mine[idx];
                    let last = mine[idx + take - 1];
                    queues[vi + 1].push_back(Event::Action(ActionList::batch(v, first, last, ())));
                    idx += take;
                }
            }
        }
    }
    queues
}

/// Check the shared invariants over the released transactions.
fn check_invariants(sc: &Scenario, txns: &[WarehouseTxn<()>]) -> Result<(), TestCaseError> {
    // per view: applied ALs in frontier order, covering its relevant
    // updates exactly once
    for &v in &sc.views {
        let mut covered: BTreeSet<UpdateId> = BTreeSet::new();
        let mut last = UpdateId::ZERO;
        for t in txns {
            for al in &t.actions {
                if al.view != v {
                    continue;
                }
                prop_assert!(al.first > last, "view {v}: AL out of order");
                for u in al.first.0..=al.last.0 {
                    // only relevant updates are covered
                    if sc.rel[(u - 1) as usize].contains(&v) {
                        prop_assert!(
                            covered.insert(UpdateId(u)),
                            "view {v}: update U{u} covered twice"
                        );
                    }
                }
                last = al.last;
            }
        }
        let expected: BTreeSet<UpdateId> = sc
            .rel
            .iter()
            .enumerate()
            .filter(|(_, r)| r.contains(&v))
            .map(|(i, _)| UpdateId(i as u64 + 1))
            .collect();
        prop_assert_eq!(covered, expected, "view {} lost updates", v);
    }
    // atomicity: within one txn, every row it covers is covered for ALL
    // views relevant to that row
    for t in txns {
        for &row in &t.rows {
            for &v in &sc.rel[(row.0 - 1) as usize] {
                let covered_here = t
                    .actions
                    .iter()
                    .any(|al| al.view == v && al.first <= row && row <= al.last);
                prop_assert!(
                    covered_here,
                    "txn {:?} covers {row} but not for view {v}",
                    t.seq
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// SPA under complete managers: invariants hold for every relevance
    /// pattern and interleaving; additionally every transaction covers
    /// exactly one row (completeness) and quiescence is reached.
    #[test]
    fn spa_invariants(sc in scenario(), seed in 0u64..1_000_000) {
        let mut spa: Spa<()> = Spa::new(sc.views.iter().copied());
        let mut il = Interleaver {
            queues: build_queues(&sc, None),
            rng: StdRng::seed_from_u64(seed),
        };
        let mut txns: Vec<WarehouseTxn<()>> = Vec::new();
        while let Some(ev) = il.next() {
            let out = match ev {
                Event::Rel(i, rel) => spa.on_rel(i, rel),
                Event::Action(al) => spa.on_action(al),
            };
            txns.extend(out.expect("legal inputs never error"));
        }
        prop_assert!(spa.is_quiescent(), "SPA failed to quiesce");
        for t in &txns {
            prop_assert_eq!(t.rows.len(), 1, "SPA txns cover exactly one row");
        }
        check_invariants(&sc, &txns)?;
    }

    /// PA under randomly batching managers: same invariants; quiescence;
    /// closures may span rows.
    #[test]
    fn pa_invariants(sc in scenario(), seed in 0u64..1_000_000, bseed in 0u64..1_000_000) {
        let mut pa: Pa<()> = Pa::new(sc.views.iter().copied());
        let mut il = Interleaver {
            queues: build_queues(&sc, Some(bseed)),
            rng: StdRng::seed_from_u64(seed),
        };
        let mut txns: Vec<WarehouseTxn<()>> = Vec::new();
        while let Some(ev) = il.next() {
            let out = match ev {
                Event::Rel(i, rel) => pa.on_rel(i, rel),
                Event::Action(al) => pa.on_action(al),
            };
            txns.extend(out.expect("legal inputs never error"));
        }
        prop_assert!(pa.is_quiescent(), "PA failed to quiesce");
        check_invariants(&sc, &txns)?;
    }

    /// SPA promptness: replaying the identical event sequence but
    /// checking after each event — once a row's enabling condition holds
    /// (all ALs present, all same-column predecessors applied), it is
    /// released within that same event.
    #[test]
    fn spa_prompt(sc in scenario(), seed in 0u64..1_000_000) {
        let mut spa: Spa<()> = Spa::new(sc.views.iter().copied());
        let mut il = Interleaver {
            queues: build_queues(&sc, None),
            rng: StdRng::seed_from_u64(seed),
        };
        // Track which (update, view) ALs have arrived and which applied.
        let mut arrived: BTreeMap<UpdateId, BTreeSet<ViewId>> = BTreeMap::new();
        let mut applied_rows: BTreeSet<UpdateId> = BTreeSet::new();
        let mut rel_seen: BTreeMap<UpdateId, BTreeSet<ViewId>> = BTreeMap::new();
        while let Some(ev) = il.next() {
            let out = match ev {
                Event::Rel(i, rel) => {
                    rel_seen.insert(i, rel.clone());
                    spa.on_rel(i, rel)
                }
                Event::Action(al) => {
                    arrived.entry(al.last).or_default().insert(al.view);
                    spa.on_action(al)
                }
            };
            for t in out.expect("legal") {
                for r in &t.rows {
                    applied_rows.insert(*r);
                }
            }
            // promptness: any fully-enabled unapplied row is a violation
            for (&u, rel) in &rel_seen {
                if applied_rows.contains(&u) {
                    continue;
                }
                let all_arrived = rel
                    .iter()
                    .all(|v| arrived.get(&u).map(|s| s.contains(v)).unwrap_or(false));
                if !all_arrived {
                    continue;
                }
                // blocked only if some earlier update shares a view and
                // is unapplied
                let blocked = rel_seen.iter().any(|(&u2, rel2)| {
                    u2 < u
                        && !applied_rows.contains(&u2)
                        && rel2.intersection(rel).next().is_some()
                });
                prop_assert!(
                    blocked,
                    "row {u} enabled but unapplied (not prompt)"
                );
            }
        }
    }

    /// Protocol violations are rejected, never silently mis-coordinated:
    /// duplicate ALs and ALs for irrelevant updates error out.
    #[test]
    fn spa_rejects_protocol_violations(sc in scenario()) {
        let mut spa: Spa<()> = Spa::new(sc.views.iter().copied());
        for (i, rel) in sc.rel.iter().enumerate() {
            spa.on_rel(UpdateId(i as u64 + 1), rel.clone()).unwrap();
        }
        // AL for a view NOT in REL_1 (if such a view exists)
        if let Some(&wrong) = sc.views.iter().find(|v| !sc.rel[0].contains(v)) {
            let al = ActionList::single(wrong, UpdateId(1), ());
            let rejected = matches!(
                spa.on_action(al),
                Err(MergeError::UnexpectedAction { .. })
            );
            prop_assert!(rejected);
        }
        // duplicate AL
        let v = *sc.rel[0].iter().next().unwrap();
        spa.on_action(ActionList::single(v, UpdateId(1), ())).unwrap();
        prop_assert!(spa
            .on_action(ActionList::single(v, UpdateId(1), ()))
            .is_err());
    }
}
