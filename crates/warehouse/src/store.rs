//! The warehouse store: materialized views, atomic multi-view
//! transactions, and the committed-state history the consistency oracle
//! checks.

use mvc_core::{ActionList, TxnSeq, UpdateId, ViewId, WarehouseTxn};
use mvc_relational::{Delta, Relation, SchemaError, ViewName};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// The concrete action-list payload of the relational instantiation: the
/// delta to apply to one materialized view.
pub type ViewDelta = Delta;

/// Action list carrying a view delta.
pub type WarehouseAction = ActionList<ViewDelta>;

/// A warehouse transaction carrying view deltas.
pub type StoreTxn = WarehouseTxn<ViewDelta>;

/// Errors from applying transactions.
#[derive(Debug, Clone, PartialEq)]
pub enum WarehouseError {
    UnknownView(ViewId),
    Schema(SchemaError),
    DuplicateView(ViewId),
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::UnknownView(v) => write!(f, "unknown view {v}"),
            WarehouseError::Schema(e) => write!(f, "schema error: {e}"),
            WarehouseError::DuplicateView(v) => write!(f, "view {v} already registered"),
        }
    }
}

impl std::error::Error for WarehouseError {}

impl From<SchemaError> for WarehouseError {
    fn from(e: SchemaError) -> Self {
        WarehouseError::Schema(e)
    }
}

/// Record of one committed warehouse transaction, kept for the oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommittedTxn {
    pub seq: TxnSeq,
    /// Views the transaction updated.
    pub views: BTreeSet<ViewId>,
    /// Update frontier the transaction advanced those views to.
    pub frontier: UpdateId,
    /// Content fingerprint of *every* view after the commit (the warehouse
    /// state vector of §2.3).
    pub fingerprints: BTreeMap<ViewId, u64>,
    /// Full contents after the commit when snapshot recording is on.
    pub snapshot: Option<BTreeMap<ViewId, Relation>>,
    /// Commit order (may differ from `seq` order under fault injection).
    pub commit_index: u64,
}

/// One materialized view plus bookkeeping. Content is `Arc`-shared so
/// `read` hands out handles instead of clones; `apply` copies-on-write
/// only when a reader still holds the previous version.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ViewSlot {
    name: ViewName,
    content: Arc<Relation>,
    /// Last source update reflected (0 = initial state).
    version: UpdateId,
}

/// Serializable image of a whole [`Warehouse`], written into durability
/// checkpoints. History is included in full — the consistency oracle
/// needs pre-crash commits to certify a stitched run.
#[derive(Debug, Clone)]
pub struct WarehouseSnapshot {
    /// `(id, name, content, version)` per registered view.
    pub views: Vec<(ViewId, ViewName, Relation, UpdateId)>,
    pub history: Vec<CommittedTxn>,
    pub record_snapshots: bool,
    pub commits: u64,
}

/// The warehouse: a set of materialized views updated by atomic
/// multi-view transactions (the merge process's `WT`s / `BWT`s).
///
/// ```
/// use mvc_core::{ActionList, TxnSeq, UpdateId, ViewId};
/// use mvc_relational::{tuple, Delta, Relation, Schema};
/// use mvc_warehouse::{StoreTxn, Warehouse};
///
/// let mut w = Warehouse::new(false);
/// w.register_view(ViewId(1), "V", Relation::new(Schema::ints(&["a", "b"]))).unwrap();
///
/// let mut d = Delta::new();
/// d.insert(tuple![1, 2]);
/// let txn = StoreTxn {
///     seq: TxnSeq(1),
///     rows: vec![UpdateId(1)],
///     views: [ViewId(1)].into(),
///     frontier: UpdateId(1),
///     actions: vec![ActionList::single(ViewId(1), UpdateId(1), d)],
/// };
/// w.apply(&txn).unwrap();
/// assert!(w.view(ViewId(1)).unwrap().contains(&tuple![1, 2]));
/// assert_eq!(w.history().len(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Warehouse {
    views: BTreeMap<ViewId, ViewSlot>,
    history: Vec<CommittedTxn>,
    record_snapshots: bool,
    commits: u64,
}

impl Warehouse {
    /// `record_snapshots` keeps full view contents per commit — required
    /// by the consistency oracle, expensive for large benchmarks
    /// (fingerprints are always recorded).
    pub fn new(record_snapshots: bool) -> Self {
        Warehouse {
            views: BTreeMap::new(),
            history: Vec::new(),
            record_snapshots,
            commits: 0,
        }
    }

    /// Register a view with its initial materialization (commonly the view
    /// evaluated at source state `ss_0`).
    pub fn register_view(
        &mut self,
        id: ViewId,
        name: impl Into<ViewName>,
        initial: Relation,
    ) -> Result<(), WarehouseError> {
        if self.views.contains_key(&id) {
            return Err(WarehouseError::DuplicateView(id));
        }
        self.views.insert(
            id,
            ViewSlot {
                name: name.into(),
                content: Arc::new(initial),
                version: UpdateId::ZERO,
            },
        );
        Ok(())
    }

    pub fn view_ids(&self) -> impl Iterator<Item = ViewId> + '_ {
        self.views.keys().copied()
    }

    pub fn view_name(&self, id: ViewId) -> Option<&ViewName> {
        self.views.get(&id).map(|s| &s.name)
    }

    /// Current contents of one view.
    pub fn view(&self, id: ViewId) -> Option<&Relation> {
        self.views.get(&id).map(|s| s.content.as_ref())
    }

    /// Version (last reflected update) of one view.
    pub fn version(&self, id: ViewId) -> Option<UpdateId> {
        self.views.get(&id).map(|s| s.version)
    }

    /// Consistent multi-view read (the warehouse customer-inquiry
    /// scenario of §1.1): hands out `Arc` handles to the requested views
    /// atomically. No tuple data is copied — a later `apply` to the same
    /// view copies-on-write, leaving the returned handles untouched.
    pub fn read(&self, ids: &[ViewId]) -> BTreeMap<ViewId, Arc<Relation>> {
        ids.iter()
            .filter_map(|id| self.views.get(id).map(|s| (*id, Arc::clone(&s.content))))
            .collect()
    }

    /// Apply one warehouse transaction atomically: every action list in
    /// the transaction, in order, then record the new state vector.
    pub fn apply(&mut self, txn: &StoreTxn) -> Result<&CommittedTxn, WarehouseError> {
        // Validate all views first — atomicity.
        for al in &txn.actions {
            if !self.views.contains_key(&al.view) {
                return Err(WarehouseError::UnknownView(al.view));
            }
        }
        for al in &txn.actions {
            let slot = self.views.get_mut(&al.view).expect("validated");
            // Copy-on-write: clones the relation only when a reader still
            // holds the previous version's handle.
            al.payload.apply_to(Arc::make_mut(&mut slot.content))?;
            slot.version = slot.version.max(al.last);
        }
        self.commits += 1;
        let record = CommittedTxn {
            seq: txn.seq,
            views: txn.views.clone(),
            frontier: txn.frontier,
            fingerprints: self
                .views
                .iter()
                .map(|(&id, s)| (id, s.content.fingerprint()))
                .collect(),
            snapshot: self.record_snapshots.then(|| {
                self.views
                    .iter()
                    .map(|(&id, s)| (id, s.content.as_ref().clone()))
                    .collect()
            }),
            commit_index: self.commits,
        };
        self.history.push(record);
        Ok(self.history.last().expect("just pushed"))
    }

    /// Group commit: apply a run of ready transactions back to back,
    /// in order, under whatever lock the caller already holds. Each
    /// transaction gets its own history record (byte-identical to
    /// applying them one `apply` call at a time) — only the caller's
    /// locking is amortized. Stops at the first failing transaction,
    /// returning how many committed before it alongside the error.
    pub fn apply_batch<'a, I>(&mut self, txns: I) -> Result<usize, (usize, WarehouseError)>
    where
        I: IntoIterator<Item = &'a StoreTxn>,
    {
        let mut applied = 0;
        for txn in txns {
            self.apply(txn).map_err(|e| (applied, e))?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Committed-transaction history in commit order.
    pub fn history(&self) -> &[CommittedTxn] {
        &self.history
    }

    /// Mutable history access — exists solely so adversarial tests can
    /// plant corrupted records and prove the consistency oracle notices.
    pub fn history_mut(&mut self) -> &mut Vec<CommittedTxn> {
        &mut self.history
    }

    pub fn commit_count(&self) -> u64 {
        self.commits
    }

    /// Checkpoint-anchored history retention: drop committed records with
    /// `commit_index` strictly below `watermark`, returning how many were
    /// reclaimed. Callers tie `watermark` to the read path's GC floor (no
    /// live session can observe a cut below it) and to the durability
    /// checkpoint (recovery replays only from the last checkpoint, so it
    /// never needs records below it either). History stays contiguous in
    /// commit order, so oracle lookups by `commit_index` keep working.
    pub fn prune_history_below(&mut self, watermark: u64) -> usize {
        let cut = self.history.partition_point(|r| r.commit_index < watermark);
        self.history.drain(..cut);
        cut
    }

    /// Capture the full store for a durability checkpoint.
    pub fn snapshot(&self) -> WarehouseSnapshot {
        WarehouseSnapshot {
            views: self
                .views
                .iter()
                .map(|(&id, s)| (id, s.name.clone(), s.content.as_ref().clone(), s.version))
                .collect(),
            history: self.history.clone(),
            record_snapshots: self.record_snapshots,
            commits: self.commits,
        }
    }

    /// Rebuild a store from a checkpoint snapshot.
    pub fn restore(s: WarehouseSnapshot) -> Self {
        Warehouse {
            views: s
                .views
                .into_iter()
                .map(|(id, name, content, version)| {
                    (
                        id,
                        ViewSlot {
                            name,
                            content: Arc::new(content),
                            version,
                        },
                    )
                })
                .collect(),
            history: s.history,
            record_snapshots: s.record_snapshots,
            commits: s.commits,
        }
    }

    /// Fingerprints of the initial (pre-any-commit) state vector.
    pub fn initial_fingerprints(&self) -> BTreeMap<ViewId, u64> {
        // Note: valid only before the first apply(); callers snapshot it
        // at setup time. After commits the current content has moved on.
        self.views
            .iter()
            .map(|(&id, s)| (id, s.content.fingerprint()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_relational::{tuple, Schema};

    fn delta_ins(vals: &[(i64, i64)]) -> Delta {
        let mut d = Delta::new();
        for &(a, b) in vals {
            d.insert(tuple![a, b]);
        }
        d
    }

    fn wh() -> Warehouse {
        let mut w = Warehouse::new(true);
        w.register_view(ViewId(1), "V1", Relation::new(Schema::ints(&["a", "b"])))
            .unwrap();
        w.register_view(ViewId(2), "V2", Relation::new(Schema::ints(&["b", "c"])))
            .unwrap();
        w
    }

    fn txn(seq: u64, actions: Vec<WarehouseAction>) -> StoreTxn {
        let views = actions.iter().map(|a| a.view).collect();
        let frontier = actions.iter().map(|a| a.last).max().unwrap();
        StoreTxn {
            seq: TxnSeq(seq),
            rows: actions.iter().map(|a| a.last).collect(),
            actions,
            views,
            frontier,
        }
    }

    #[test]
    fn atomic_multi_view_apply() {
        let mut w = wh();
        let t = txn(
            1,
            vec![
                ActionList::single(ViewId(1), UpdateId(1), delta_ins(&[(1, 2)])),
                ActionList::single(ViewId(2), UpdateId(1), delta_ins(&[(2, 3)])),
            ],
        );
        let rec = w.apply(&t).unwrap();
        assert_eq!(rec.frontier, UpdateId(1));
        assert_eq!(rec.commit_index, 1);
        assert!(w.view(ViewId(1)).unwrap().contains(&tuple![1, 2]));
        assert!(w.view(ViewId(2)).unwrap().contains(&tuple![2, 3]));
        assert_eq!(w.version(ViewId(1)), Some(UpdateId(1)));
    }

    #[test]
    fn apply_batch_matches_per_txn_apply() {
        let run = [
            txn(
                1,
                vec![ActionList::single(
                    ViewId(1),
                    UpdateId(1),
                    delta_ins(&[(1, 2)]),
                )],
            ),
            txn(
                2,
                vec![ActionList::single(
                    ViewId(2),
                    UpdateId(2),
                    delta_ins(&[(2, 3)]),
                )],
            ),
            txn(
                3,
                vec![ActionList::single(
                    ViewId(1),
                    UpdateId(3),
                    delta_ins(&[(4, 5)]),
                )],
            ),
        ];
        let mut batched = wh();
        assert_eq!(batched.apply_batch(run.iter()).unwrap(), 3);
        let mut serial = wh();
        for t in &run {
            serial.apply(t).unwrap();
        }
        assert_eq!(batched.history().len(), serial.history().len());
        for (bt, st) in batched.history().iter().zip(serial.history()) {
            assert_eq!(bt.seq, st.seq);
            assert_eq!(bt.commit_index, st.commit_index);
            assert_eq!(bt.fingerprints, st.fingerprints);
        }
        assert_eq!(
            batched.read(&[ViewId(1), ViewId(2)]),
            serial.read(&[ViewId(1), ViewId(2)])
        );
    }

    #[test]
    fn apply_batch_stops_at_first_failure() {
        let mut w = wh();
        let run = [
            txn(
                1,
                vec![ActionList::single(
                    ViewId(1),
                    UpdateId(1),
                    delta_ins(&[(1, 2)]),
                )],
            ),
            txn(
                2,
                vec![ActionList::single(
                    ViewId(9),
                    UpdateId(2),
                    delta_ins(&[(2, 3)]),
                )],
            ),
        ];
        let (applied, err) = w.apply_batch(run.iter()).unwrap_err();
        assert_eq!(applied, 1, "first txn committed before the failure");
        assert!(matches!(err, WarehouseError::UnknownView(ViewId(9))));
        assert_eq!(w.history().len(), 1);
    }

    /// Partial-failure semantics in full: on error at index `i`, exactly
    /// the first `i` transactions are visible — contents, versions, and
    /// history fingerprints all match a warehouse that applied only the
    /// good prefix — and nothing of the failing or later transactions
    /// leaked in.
    #[test]
    fn apply_batch_partial_failure_visibility() {
        let good = |seq: u64, view: u32, vals: (i64, i64)| {
            txn(
                seq,
                vec![ActionList::single(
                    ViewId(view),
                    UpdateId(seq),
                    delta_ins(&[vals]),
                )],
            )
        };
        let run = [
            good(1, 1, (1, 2)),
            good(2, 2, (2, 3)),
            good(3, 1, (4, 5)),
            // Fails validation (unknown view) at index 3…
            txn(
                4,
                vec![
                    ActionList::single(ViewId(1), UpdateId(4), delta_ins(&[(6, 7)])),
                    ActionList::single(ViewId(9), UpdateId(4), delta_ins(&[(8, 9)])),
                ],
            ),
            // …so this one must never run.
            good(5, 2, (10, 11)),
        ];
        let mut w = wh();
        let (applied, err) = w.apply_batch(run.iter()).unwrap_err();
        assert_eq!(applied, 3, "exactly the prefix before the failure");
        assert!(matches!(err, WarehouseError::UnknownView(ViewId(9))));

        let mut prefix_only = wh();
        assert_eq!(prefix_only.apply_batch(run[..3].iter()).unwrap(), 3);
        assert_eq!(
            w.read(&[ViewId(1), ViewId(2)]),
            prefix_only.read(&[ViewId(1), ViewId(2)])
        );
        assert_eq!(w.commit_count(), 3);
        assert_eq!(w.history().len(), 3);
        for (got, want) in w.history().iter().zip(prefix_only.history()) {
            assert_eq!(got.seq, want.seq);
            assert_eq!(got.commit_index, want.commit_index);
            assert_eq!(got.fingerprints, want.fingerprints);
        }
        // The failing txn's valid first action must not have leaked: its
        // atomicity is per-transaction, not per-action.
        assert!(!w.view(ViewId(1)).unwrap().contains(&tuple![6, 7]));
        assert!(!w.view(ViewId(2)).unwrap().contains(&tuple![10, 11]));
        assert_eq!(w.version(ViewId(1)), Some(UpdateId(3)));
        assert_eq!(w.version(ViewId(2)), Some(UpdateId(2)));
    }

    /// `read` hands out handles: the cut stays frozen while the warehouse
    /// moves on (copy-on-write in `apply`), and an un-retained read costs
    /// no relation clone at all.
    #[test]
    fn read_handles_are_stable_snapshots() {
        let mut w = wh();
        w.apply(&txn(
            1,
            vec![ActionList::single(
                ViewId(1),
                UpdateId(1),
                delta_ins(&[(1, 2)]),
            )],
        ))
        .unwrap();
        let cut = w.read(&[ViewId(1)]);
        w.apply(&txn(
            2,
            vec![ActionList::single(
                ViewId(1),
                UpdateId(2),
                delta_ins(&[(3, 4)]),
            )],
        ))
        .unwrap();
        assert_eq!(cut[&ViewId(1)].len(), 1, "retained cut unaffected");
        assert!(!cut[&ViewId(1)].contains(&tuple![3, 4]));
        assert_eq!(w.view(ViewId(1)).unwrap().len(), 2);
        // With the old handle dropped, the next apply mutates in place
        // (same allocation — no reader, no copy).
        drop(cut);
        let before = Arc::as_ptr(&w.read(&[ViewId(1)])[&ViewId(1)]);
        w.apply(&txn(
            3,
            vec![ActionList::single(
                ViewId(1),
                UpdateId(3),
                delta_ins(&[(5, 6)]),
            )],
        ))
        .unwrap();
        assert_eq!(before, Arc::as_ptr(&w.read(&[ViewId(1)])[&ViewId(1)]));
    }

    /// Retained history still satisfies recovery: prune below a
    /// checkpoint watermark, snapshot/restore (the durability path), and
    /// the restored store continues committing with correct commit
    /// indices and oracle-visible records for everything at or above the
    /// watermark.
    #[test]
    fn pruned_history_survives_snapshot_restore() {
        let step = |seq: u64| {
            txn(
                seq,
                vec![ActionList::single(
                    ViewId(1),
                    UpdateId(seq),
                    delta_ins(&[(seq as i64, 0)]),
                )],
            )
        };
        let mut w = wh();
        let mut twin = wh();
        for seq in 1..=6 {
            w.apply(&step(seq)).unwrap();
            twin.apply(&step(seq)).unwrap();
        }
        assert_eq!(w.prune_history_below(4), 3);
        assert_eq!(w.history().len(), 3);
        assert_eq!(w.history()[0].commit_index, 4);
        // Checkpoint round-trip with pruned history.
        let mut restored = Warehouse::restore(w.snapshot());
        assert_eq!(restored.commit_count(), 6);
        restored.apply(&step(7)).unwrap();
        twin.apply(&step(7)).unwrap();
        assert_eq!(restored.history().last().unwrap().commit_index, 7);
        // Every retained record matches the unpruned twin's.
        for rec in restored.history() {
            let want = &twin.history()[(rec.commit_index - 1) as usize];
            assert_eq!(rec.seq, want.seq);
            assert_eq!(rec.fingerprints, want.fingerprints);
        }
        assert_eq!(
            restored.read(&[ViewId(1), ViewId(2)]),
            twin.read(&[ViewId(1), ViewId(2)])
        );
        // Pruning everything keeps the store usable.
        assert_eq!(restored.prune_history_below(u64::MAX), 4);
        restored.apply(&step(8)).unwrap();
        assert_eq!(restored.history().last().unwrap().commit_index, 8);
    }

    #[test]
    fn unknown_view_rejected_before_any_mutation() {
        let mut w = wh();
        let t = txn(
            1,
            vec![
                ActionList::single(ViewId(1), UpdateId(1), delta_ins(&[(1, 2)])),
                ActionList::single(ViewId(9), UpdateId(1), delta_ins(&[(2, 3)])),
            ],
        );
        assert!(matches!(
            w.apply(&t),
            Err(WarehouseError::UnknownView(ViewId(9)))
        ));
        assert!(w.view(ViewId(1)).unwrap().is_empty(), "atomic rejection");
        assert!(w.history().is_empty());
    }

    #[test]
    fn history_records_state_vector() {
        let mut w = wh();
        w.apply(&txn(
            1,
            vec![ActionList::single(
                ViewId(1),
                UpdateId(1),
                delta_ins(&[(1, 2)]),
            )],
        ))
        .unwrap();
        w.apply(&txn(
            2,
            vec![ActionList::single(
                ViewId(2),
                UpdateId(2),
                delta_ins(&[(2, 3)]),
            )],
        ))
        .unwrap();
        let h = w.history();
        assert_eq!(h.len(), 2);
        // fingerprints cover *all* views at each commit
        assert_eq!(h[0].fingerprints.len(), 2);
        assert_eq!(h[1].fingerprints.len(), 2);
        // V1 unchanged between commits → same fingerprint
        assert_eq!(h[0].fingerprints[&ViewId(1)], h[1].fingerprints[&ViewId(1)]);
        assert_ne!(h[0].fingerprints[&ViewId(2)], h[1].fingerprints[&ViewId(2)]);
        let snap = h[1].snapshot.as_ref().unwrap();
        assert!(snap[&ViewId(1)].contains(&tuple![1, 2]));
    }

    #[test]
    fn consistent_read_returns_requested_views() {
        let mut w = wh();
        w.apply(&txn(
            1,
            vec![ActionList::single(
                ViewId(1),
                UpdateId(1),
                delta_ins(&[(1, 2)]),
            )],
        ))
        .unwrap();
        let r = w.read(&[ViewId(1), ViewId(2), ViewId(7)]);
        assert_eq!(r.len(), 2, "unknown views skipped");
        assert_eq!(r[&ViewId(1)].len(), 1);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut w = wh();
        assert!(matches!(
            w.register_view(ViewId(1), "again", Relation::new(Schema::ints(&["x"]))),
            Err(WarehouseError::DuplicateView(_))
        ));
    }

    #[test]
    fn deletes_are_clamped_idempotent() {
        let mut w = wh();
        let mut d = Delta::new();
        d.delete(tuple![9, 9]);
        w.apply(&txn(1, vec![ActionList::single(ViewId(1), UpdateId(1), d)]))
            .unwrap();
        assert!(w.view(ViewId(1)).unwrap().is_empty());
    }

    #[test]
    fn version_is_max_of_applied_frontiers() {
        let mut w = wh();
        w.apply(&txn(
            1,
            vec![ActionList::batch(
                ViewId(1),
                UpdateId(1),
                UpdateId(3),
                delta_ins(&[(1, 2)]),
            )],
        ))
        .unwrap();
        assert_eq!(w.version(ViewId(1)), Some(UpdateId(3)));
    }
}
