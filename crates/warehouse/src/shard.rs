//! Merging per-shard commit histories into one global store (sharded
//! warehouse plane, §6.1 scaled out).
//!
//! Each warehouse shard owns a disjoint subset of views and applies its
//! transactions under its own lock, so cross-shard interference is
//! structurally impossible. During the run every applied transaction
//! draws a **global ticket** (a shared atomic counter incremented while
//! the applying shard's lock is held), which fixes one legal
//! linearization of the whole plane: shard streams are view-disjoint, so
//! any interleaving that preserves each shard's local order is
//! equivalent, and the ticket order is such an interleaving that was
//! actually observed. [`merge_shards`] replays that order into a single
//! global [`Warehouse`] whose history carries full state vectors, so the
//! existing single-store consistency oracle certifies the sharded run
//! unchanged.

use crate::store::{CommittedTxn, Warehouse, WarehouseSnapshot};
use mvc_core::ViewId;
use std::collections::BTreeMap;
use std::fmt;

/// One shard's contribution to the merge.
#[derive(Debug)]
pub struct ShardInput {
    /// The shard's store at end of run (local history intact).
    pub warehouse: Warehouse,
    /// Global ticket per history entry, parallel to
    /// `warehouse.history()` (drawn under the shard lock at apply time).
    pub tickets: Vec<u64>,
    /// The shard's pre-any-commit state vector, snapshotted at setup.
    pub initial_fingerprints: BTreeMap<ViewId, u64>,
}

/// Why a merge was rejected. Any of these means the run's ticket
/// protocol was broken — the plane has no certifiable linearization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMergeError {
    /// `tickets` and the shard's history disagree in length.
    TicketCountMismatch {
        shard: usize,
        tickets: usize,
        commits: usize,
    },
    /// The same global ticket was drawn twice.
    DuplicateTicket(u64),
    /// A shard's tickets are not increasing in local commit order (the
    /// counter must be drawn under the shard lock, in apply order).
    TicketOrderInverted { shard: usize, ticket: u64 },
    /// Two shards claim the same view.
    DuplicateView(ViewId),
}

impl fmt::Display for ShardMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardMergeError::TicketCountMismatch {
                shard,
                tickets,
                commits,
            } => write!(f, "shard {shard}: {tickets} tickets for {commits} commits"),
            ShardMergeError::DuplicateTicket(t) => {
                write!(f, "global ticket {t} drawn by two commits")
            }
            ShardMergeError::TicketOrderInverted { shard, ticket } => write!(
                f,
                "shard {shard}: ticket {ticket} out of order with its local history"
            ),
            ShardMergeError::DuplicateView(v) => write!(f, "view {v} owned by two shards"),
        }
    }
}

impl std::error::Error for ShardMergeError {}

/// The result of [`merge_shards`]: a global store plus the maps that
/// relate it back to the per-shard planes.
#[derive(Debug)]
pub struct ShardMerge {
    /// Global warehouse: all shards' views, ticket-ordered history with
    /// full (all-view) fingerprint vectors per commit.
    pub warehouse: Warehouse,
    /// Global commit order: position `k` holds `(shard, local_index)` of
    /// the commit that became global `commit_index` `k + 1`.
    pub order: Vec<(usize, usize)>,
    /// Per shard: local watermark `w` (1-based; vector index `w - 1`)
    /// mapped to its global `commit_index`. Strictly increasing per
    /// shard, so remapped per-shard watermark sequences stay monotone.
    pub local_to_global: Vec<Vec<u64>>,
}

/// Replay per-shard histories in global-ticket order into one store.
/// See the module docs for why the ticket order is a legal
/// linearization. Shard view contents are taken as-is (they *are* the
/// final global contents — no other shard ever touched them);
/// per-commit fingerprint maps are spliced into running full state
/// vectors initialized from every shard's initial fingerprints.
pub fn merge_shards(inputs: Vec<ShardInput>) -> Result<ShardMerge, ShardMergeError> {
    // Ticket-sorted global order, with protocol validation.
    let mut order: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for (s, input) in inputs.iter().enumerate() {
        let commits = input.warehouse.history().len();
        if input.tickets.len() != commits {
            return Err(ShardMergeError::TicketCountMismatch {
                shard: s,
                tickets: input.tickets.len(),
                commits,
            });
        }
        let mut prev: Option<u64> = None;
        for (i, &t) in input.tickets.iter().enumerate() {
            if prev.is_some_and(|p| t <= p) {
                return Err(ShardMergeError::TicketOrderInverted {
                    shard: s,
                    ticket: t,
                });
            }
            prev = Some(t);
            if order.insert(t, (s, i)).is_some() {
                return Err(ShardMergeError::DuplicateTicket(t));
            }
        }
    }

    // Disjoint view ownership + the running global state vector.
    let mut running: BTreeMap<ViewId, u64> = BTreeMap::new();
    let mut views = Vec::new();
    let mut owner: BTreeMap<ViewId, usize> = BTreeMap::new();
    for (s, input) in inputs.iter().enumerate() {
        let snap = input.warehouse.snapshot();
        for (id, name, content, version) in snap.views {
            if let Some(&other) = owner.get(&id) {
                let _ = other;
                return Err(ShardMergeError::DuplicateView(id));
            }
            owner.insert(id, s);
            views.push((id, name, content, version));
        }
        for (&v, &fp) in &input.initial_fingerprints {
            running.insert(v, fp);
        }
    }

    let order: Vec<(usize, usize)> = order.into_values().collect();
    let mut history: Vec<CommittedTxn> = Vec::with_capacity(order.len());
    let mut local_to_global: Vec<Vec<u64>> = inputs
        .iter()
        .map(|i| Vec::with_capacity(i.tickets.len()))
        .collect();
    for (k, &(s, i)) in order.iter().enumerate() {
        let rec = &inputs[s].warehouse.history()[i];
        // The shard's per-commit fingerprint map is its full shard-local
        // state vector; other shards' entries are untouched by this
        // commit (separate stores), so the spliced map is the global
        // state vector after it.
        for (&v, &fp) in &rec.fingerprints {
            running.insert(v, fp);
        }
        let global_index = k as u64 + 1;
        local_to_global[s].push(global_index);
        history.push(CommittedTxn {
            seq: rec.seq,
            views: rec.views.clone(),
            frontier: rec.frontier,
            fingerprints: running.clone(),
            snapshot: None,
            commit_index: global_index,
        });
    }

    let commits = history.len() as u64;
    let warehouse = Warehouse::restore(WarehouseSnapshot {
        views,
        history,
        record_snapshots: false,
        commits,
    });
    Ok(ShardMerge {
        warehouse,
        order,
        local_to_global,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreTxn;
    use mvc_core::{ActionList, TxnSeq, UpdateId};
    use mvc_relational::{tuple, Delta, Relation, Schema};

    fn shard_with(views: &[(u32, i64)], txns: &[(u64, u32, i64)]) -> ShardInput {
        let mut w = Warehouse::new(false);
        for &(v, seed) in views {
            let mut r = Relation::new(Schema::ints(&["a"]));
            r.insert(tuple![seed]).unwrap();
            w.register_view(ViewId(v), format!("V{v}").as_str(), r)
                .unwrap();
        }
        let initial_fingerprints = w.initial_fingerprints();
        let mut tickets = Vec::new();
        for &(ticket, v, row) in txns {
            let mut d = Delta::new();
            d.insert(tuple![row]);
            let al = ActionList::single(ViewId(v), UpdateId(row as u64), d);
            let txn = StoreTxn {
                seq: TxnSeq(ticket),
                rows: vec![UpdateId(row as u64)],
                views: [ViewId(v)].into(),
                frontier: UpdateId(row as u64),
                actions: vec![al],
            };
            w.apply(&txn).unwrap();
            tickets.push(ticket);
        }
        ShardInput {
            warehouse: w,
            tickets,
            initial_fingerprints,
        }
    }

    #[test]
    fn merge_interleaves_by_ticket_with_full_state_vectors() {
        // Shard 0 owns V1 (tickets 1, 4), shard 1 owns V2 (tickets 2, 3).
        let s0 = shard_with(&[(1, 10)], &[(1, 1, 11), (4, 1, 12)]);
        let s1 = shard_with(&[(2, 20)], &[(2, 2, 21), (3, 2, 22)]);
        let v1_initial = s0.initial_fingerprints[&ViewId(1)];
        let v2_after_first = s1.warehouse.history()[0].fingerprints[&ViewId(2)];
        let m = merge_shards(vec![s0, s1]).unwrap();
        assert_eq!(m.order, vec![(0, 0), (1, 0), (1, 1), (0, 1)]);
        assert_eq!(m.local_to_global, vec![vec![1, 4], vec![2, 3]]);
        let h = m.warehouse.history();
        assert_eq!(h.len(), 4);
        // Every merged record carries both views' fingerprints, with the
        // other shard's entry frozen at its last value.
        for rec in h {
            assert!(rec.fingerprints.contains_key(&ViewId(1)));
            assert!(rec.fingerprints.contains_key(&ViewId(2)));
        }
        assert_eq!(h[0].fingerprints[&ViewId(2)], {
            let mut r = Relation::new(Schema::ints(&["a"]));
            r.insert(tuple![20]).unwrap();
            r.fingerprint()
        });
        assert_eq!(h[1].fingerprints[&ViewId(1)], h[0].fingerprints[&ViewId(1)]);
        assert_eq!(h[1].fingerprints[&ViewId(2)], v2_after_first);
        assert_ne!(h[0].fingerprints[&ViewId(1)], v1_initial);
        assert_eq!(
            h.iter().map(|r| r.commit_index).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        // Final contents come straight from the shard stores.
        assert_eq!(m.warehouse.commit_count(), 4);
        assert!(m.warehouse.view(ViewId(1)).is_some());
        assert!(m.warehouse.view(ViewId(2)).is_some());
    }

    #[test]
    fn merge_rejects_protocol_violations() {
        // Duplicate ticket across shards.
        let s0 = shard_with(&[(1, 10)], &[(1, 1, 11)]);
        let s1 = shard_with(&[(2, 20)], &[(1, 2, 21)]);
        match merge_shards(vec![s0, s1]) {
            Err(ShardMergeError::DuplicateTicket(t)) => assert_eq!(t, 1),
            other => panic!("expected DuplicateTicket, got {other:?}"),
        }
        // Duplicate view ownership.
        let a = shard_with(&[(1, 10)], &[(1, 1, 11)]);
        let b = shard_with(&[(1, 20)], &[(2, 1, 21)]);
        match merge_shards(vec![a, b]) {
            Err(ShardMergeError::DuplicateView(v)) => assert_eq!(v, ViewId(1)),
            other => panic!("expected DuplicateView, got {other:?}"),
        }
        // Ticket count mismatch.
        let mut c = shard_with(&[(1, 10)], &[(1, 1, 11)]);
        c.tickets.push(9);
        match merge_shards(vec![c]) {
            Err(ShardMergeError::TicketCountMismatch { shard, .. }) => assert_eq!(shard, 0),
            other => panic!("expected TicketCountMismatch, got {other:?}"),
        }
        // Local ticket order inverted.
        let mut d = shard_with(&[(1, 10)], &[(1, 1, 11), (2, 1, 12)]);
        d.tickets = vec![2, 1];
        match merge_shards(vec![d]) {
            Err(ShardMergeError::TicketOrderInverted { shard, ticket }) => {
                assert_eq!((shard, ticket), (0, 1));
            }
            other => panic!("expected TicketOrderInverted, got {other:?}"),
        }
    }
}
