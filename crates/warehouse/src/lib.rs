//! # mvc-warehouse
//!
//! The warehouse tier of the MVC reproduction: materialized views, atomic
//! multi-view transactions (the merge process's `WT`s and `BWT`s of §4.3),
//! commit-history recording for the consistency oracle, consistent
//! multi-view readers (§1.1's customer-inquiry access pattern), and a
//! commit-reordering fault injector that reproduces the §4.3 hazard.
//!
//! This crate instantiates `mvc-core`'s opaque action-list payload with
//! the relational [`ViewDelta`].

#![forbid(unsafe_code)]

pub mod shard;
pub mod shared;
pub mod store;

pub use shard::{merge_shards, ShardInput, ShardMerge, ShardMergeError};
pub use shared::{ReorderingCommitter, SharedWarehouse};
pub use store::{
    CommittedTxn, StoreTxn, ViewDelta, Warehouse, WarehouseAction, WarehouseError,
    WarehouseSnapshot,
};
