//! Thread-safe warehouse handle for the threaded runtime, with optional
//! commit-reordering fault injection (used to demonstrate why §4.3's
//! commit-order control is necessary).

use crate::store::{CommittedTxn, StoreTxn, Warehouse, WarehouseError};
use mvc_core::lock::AuditedRwLock;
use mvc_core::{TxnSeq, ViewId};
use mvc_relational::Relation;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shared warehouse: all mutation goes through [`SharedWarehouse::apply`], all reads are
/// consistent snapshots under the same lock.
#[derive(Debug, Clone)]
pub struct SharedWarehouse {
    inner: Arc<AuditedRwLock<Warehouse>>,
}

impl SharedWarehouse {
    pub fn new(warehouse: Warehouse) -> Self {
        SharedWarehouse {
            inner: Arc::new(AuditedRwLock::new("warehouse.shared", warehouse)),
        }
    }

    /// Apply a transaction atomically; returns its commit record's seq.
    pub fn apply(&self, txn: &StoreTxn) -> Result<TxnSeq, WarehouseError> {
        let mut w = self.inner.write();
        w.apply(txn).map(|rec| rec.seq)
    }

    /// Consistent multi-view read (§1.1's customer-inquiry access);
    /// `Arc` handles, no tuple copies.
    pub fn read(&self, ids: &[ViewId]) -> BTreeMap<ViewId, Arc<Relation>> {
        self.inner.read().read(ids)
    }

    pub fn history_len(&self) -> usize {
        self.inner.read().history().len()
    }

    pub fn history(&self) -> Vec<CommittedTxn> {
        self.inner.read().history().to_vec()
    }

    pub fn with<R>(&self, f: impl FnOnce(&Warehouse) -> R) -> R {
        f(&self.inner.read())
    }
}

/// A committer that buffers released transactions and applies them in a
/// deliberately scrambled order — fault injection reproducing the §4.3
/// hazard ("it is possible that the warehouse DBMS will commit WT3 before
/// WT1. If so, the state of view V2 will be invalid").
#[derive(Debug)]
pub struct ReorderingCommitter {
    warehouse: SharedWarehouse,
    buffer: Vec<StoreTxn>,
    /// Commit the buffer once it reaches this depth, in reversed order.
    depth: usize,
}

impl ReorderingCommitter {
    pub fn new(warehouse: SharedWarehouse, depth: usize) -> Self {
        ReorderingCommitter {
            warehouse,
            buffer: Vec::new(),
            depth: depth.max(1),
        }
    }

    /// Submit a released transaction; commits happen (reversed) whenever
    /// the buffer fills. Returns the seqs committed by this call.
    pub fn submit(&mut self, txn: StoreTxn) -> Result<Vec<TxnSeq>, WarehouseError> {
        self.buffer.push(txn);
        if self.buffer.len() >= self.depth {
            self.drain_reversed()
        } else {
            Ok(Vec::new())
        }
    }

    /// Commit everything left (reversed).
    pub fn flush(&mut self) -> Result<Vec<TxnSeq>, WarehouseError> {
        self.drain_reversed()
    }

    fn drain_reversed(&mut self) -> Result<Vec<TxnSeq>, WarehouseError> {
        let mut out = Vec::with_capacity(self.buffer.len());
        for txn in self.buffer.drain(..).rev() {
            out.push(self.warehouse.apply(&txn)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvc_core::{ActionList, UpdateId};
    use mvc_relational::{tuple, Delta, Schema};

    fn setup() -> SharedWarehouse {
        let mut w = Warehouse::new(true);
        w.register_view(ViewId(1), "V1", Relation::new(Schema::ints(&["a"])))
            .unwrap();
        SharedWarehouse::new(w)
    }

    fn ins_txn(seq: u64, update: u64, val: i64) -> StoreTxn {
        let mut d = Delta::new();
        d.insert(tuple![val]);
        let al = ActionList::single(ViewId(1), UpdateId(update), d);
        StoreTxn {
            seq: TxnSeq(seq),
            rows: vec![UpdateId(update)],
            views: [ViewId(1)].into(),
            frontier: UpdateId(update),
            actions: vec![al],
        }
    }

    #[test]
    fn shared_apply_and_read() {
        let w = setup();
        w.apply(&ins_txn(1, 1, 42)).unwrap();
        let r = w.read(&[ViewId(1)]);
        assert!(r[&ViewId(1)].contains(&tuple![42]));
        assert_eq!(w.history_len(), 1);
    }

    #[test]
    fn reordering_committer_scrambles() {
        let w = setup();
        let mut rc = ReorderingCommitter::new(w.clone(), 2);
        assert!(rc.submit(ins_txn(1, 1, 1)).unwrap().is_empty());
        let committed = rc.submit(ins_txn(2, 2, 2)).unwrap();
        assert_eq!(committed, vec![TxnSeq(2), TxnSeq(1)], "reversed order");
        let h = w.history();
        assert_eq!(h[0].seq, TxnSeq(2));
        assert_eq!(h[1].seq, TxnSeq(1));
    }

    #[test]
    fn flush_drains_partial_buffer() {
        let w = setup();
        let mut rc = ReorderingCommitter::new(w, 10);
        rc.submit(ins_txn(1, 1, 1)).unwrap();
        assert_eq!(rc.flush().unwrap(), vec![TxnSeq(1)]);
    }
}
