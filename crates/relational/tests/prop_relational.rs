//! Property tests for the relational substrate: bag-algebra laws, delta
//! composition, and — most importantly — the incremental delta rule
//! against full recomputation over randomized views and update batches.

use mvc_relational::maintain::{recompute_delta, spj_delta};
use mvc_relational::{
    diff, eval_view, tuple, Catalog, Database, Delta, Expr, Relation, RelationName, Schema, Tuple,
    ViewDef,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..6, 0i64..6).prop_map(|(a, b)| tuple![a, b])
}

fn small_relation() -> impl Strategy<Value = Vec<(Tuple, u8)>> {
    proptest::collection::vec((small_tuple(), 1u8..3), 0..12)
}

fn build_relation(schema: &Schema, rows: &[(Tuple, u8)]) -> Relation {
    let mut r = Relation::new(schema.clone());
    for (t, n) in rows {
        r.insert_n(t.clone(), *n as u64).unwrap();
    }
    r
}

/// Signed multiset changes: net in -2..=2 per tuple.
fn small_delta() -> impl Strategy<Value = Vec<(Tuple, i8)>> {
    proptest::collection::vec((small_tuple(), -2i8..=2), 0..8)
}

fn catalog() -> Catalog {
    Catalog::new()
        .with("R", Schema::ints(&["a", "b"]))
        .with("S", Schema::ints(&["b", "c"]))
}

/// A few representative view shapes over R and S.
fn views(cat: &Catalog) -> Vec<ViewDef> {
    vec![
        ViewDef::builder("copy").from("R").build(cat).unwrap(),
        ViewDef::builder("select")
            .from("R")
            .filter(Expr::gt(Expr::named("R.a"), Expr::value(2)))
            .build(cat)
            .unwrap(),
        ViewDef::builder("join")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .project(["R.a", "S.c"])
            .build(cat)
            .unwrap(),
        ViewDef::builder("selfjoin")
            .from("R")
            .from("R")
            .join_on("R.b", "R#2.a")
            .build(cat)
            .unwrap(),
        ViewDef::builder("theta")
            .from("R")
            .from("S")
            .filter(Expr::lt(Expr::named("R.b"), Expr::named("S.b")))
            .project(["R.a", "S.c"])
            .build(cat)
            .unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The headline invariant: the multilinear delta rule equals full
    /// recomputation for every view shape, any base contents, any signed
    /// batch touching both relations at once.
    #[test]
    fn delta_rule_equals_recompute(
        r_rows in small_relation(),
        s_rows in small_relation(),
        dr in small_delta(),
        ds in small_delta(),
    ) {
        let cat = catalog();
        let r_schema = cat.schema(&"R".into()).unwrap().clone();
        let s_schema = cat.schema(&"S".into()).unwrap().clone();
        let mut old = Database::new();
        old.insert_relation("R", build_relation(&r_schema, &r_rows));
        old.insert_relation("S", build_relation(&s_schema, &s_rows));

        // Build clamped per-relation deltas (deletes bounded by content so
        // both evaluation paths see identical final states).
        let mut changes: BTreeMap<RelationName, Delta> = BTreeMap::new();
        let mut new = old.clone();
        for (name, raw) in [("R", &dr), ("S", &ds)] {
            let rel_name: RelationName = name.into();
            let mut d = Delta::new();
            for (t, n) in raw {
                let current = {
                    let rel = new.relation(&rel_name).unwrap();
                    rel.multiplicity(t) as i64 + d.net(t)
                };
                let n = (*n as i64).max(-current); // clamp deletes
                d.add(t.clone(), n);
            }
            if !d.is_empty() {
                new.apply(&rel_name, &d).unwrap();
                changes.insert(rel_name, d);
            }
        }

        for v in views(&cat) {
            if v.is_aggregate() { continue; }
            let inc = spj_delta(&v.core, &old, &new, &changes).unwrap();
            let rec = recompute_delta(&v, &old, &new).unwrap();
            prop_assert_eq!(&inc, &rec, "view {} diverged", v.name);
            // and applying the delta lands exactly on the new evaluation
            let mut mat = eval_view(&v, &old).unwrap();
            inc.apply_to(&mut mat).unwrap();
            prop_assert_eq!(mat, eval_view(&v, &new).unwrap());
        }
    }

    /// Delta composition is associative-with-inverse: d ∘ d⁻¹ = ∅ and
    /// (a ∘ b) applied = a applied then b applied.
    #[test]
    fn delta_group_laws(a in small_delta(), b in small_delta()) {
        let to_delta = |v: &Vec<(Tuple, i8)>| {
            let mut d = Delta::new();
            for (t, n) in v { d.add(t.clone(), *n as i64); }
            d
        };
        let (da, db) = (to_delta(&a), to_delta(&b));
        prop_assert!(da.then(&da.inverse()).is_empty());
        // composition consistency on an unbounded (net) level
        let ab = da.then(&db);
        for (t, _) in ab.iter() {
            prop_assert_eq!(ab.net(t), da.net(t) + db.net(t));
        }
    }

    /// Bag union/difference laws: |A ∪ B| = |A| + |B|;
    /// (A ∪ B) ∖ B = A (monus with B fully removable).
    #[test]
    fn bag_union_difference(a_rows in small_relation(), b_rows in small_relation()) {
        let schema = Schema::ints(&["a", "b"]);
        let a = build_relation(&schema, &a_rows);
        let b = build_relation(&schema, &b_rows);
        let u = a.union(&b);
        prop_assert_eq!(u.len(), a.len() + b.len());
        prop_assert_eq!(u.difference(&b), a);
    }

    /// diff() is the unique delta from old to new.
    #[test]
    fn diff_round_trip(a_rows in small_relation(), b_rows in small_relation()) {
        let schema = Schema::ints(&["a", "b"]);
        let old = build_relation(&schema, &a_rows);
        let new = build_relation(&schema, &b_rows);
        let d = diff(&old, &new);
        let mut x = old.clone();
        d.apply_to(&mut x).unwrap();
        prop_assert_eq!(x, new);
    }

    /// Evaluation is insensitive to insertion order (relations are
    /// canonical bags).
    #[test]
    fn eval_order_independent(mut rows in small_relation()) {
        let cat = catalog();
        let schema = cat.schema(&"R".into()).unwrap().clone();
        let mut db1 = Database::new();
        db1.insert_relation("R", build_relation(&schema, &rows));
        db1.insert_relation("S", Relation::new(cat.schema(&"S".into()).unwrap().clone()));
        rows.reverse();
        let mut db2 = Database::new();
        db2.insert_relation("R", build_relation(&schema, &rows));
        db2.insert_relation("S", Relation::new(cat.schema(&"S".into()).unwrap().clone()));
        for v in views(&cat) {
            prop_assert_eq!(
                eval_view(&v, &db1).unwrap(),
                eval_view(&v, &db2).unwrap()
            );
        }
    }
}
