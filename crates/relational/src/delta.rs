//! Deltas: signed multisets of tuple changes.
//!
//! A [`Delta`] is the unit of change flowing through the whole system:
//! sources report base-relation deltas, view managers compute view deltas,
//! and warehouse action lists carry view deltas as [`TupleOp`] streams.

use crate::relation::Relation;
use crate::schema::{Schema, SchemaError};
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A single tuple-level operation, as reported by a source or applied to a
/// materialized view. A modification is modelled as delete(old)+insert(new),
/// exactly as the paper treats updates ("each update is a single tuple
/// insert, delete, or modification").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TupleOp {
    Insert(Tuple),
    Delete(Tuple),
}

impl TupleOp {
    pub fn tuple(&self) -> &Tuple {
        match self {
            TupleOp::Insert(t) | TupleOp::Delete(t) => t,
        }
    }

    pub fn is_insert(&self) -> bool {
        matches!(self, TupleOp::Insert(_))
    }

    /// The inverse operation (used by compensation in view managers).
    pub fn inverse(&self) -> TupleOp {
        match self {
            TupleOp::Insert(t) => TupleOp::Delete(t.clone()),
            TupleOp::Delete(t) => TupleOp::Insert(t.clone()),
        }
    }
}

impl fmt::Display for TupleOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TupleOp::Insert(t) => write!(f, "+{t}"),
            TupleOp::Delete(t) => write!(f, "-{t}"),
        }
    }
}

/// A signed multiset: per distinct tuple, a (possibly negative) net
/// multiplicity change. Normalized on the fly: entries with net 0 are
/// dropped.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Delta {
    changes: BTreeMap<Tuple, i64>,
}

impl Delta {
    pub fn new() -> Self {
        Delta::default()
    }

    /// Build a delta from a sequence of tuple ops.
    pub fn from_ops<I>(ops: I) -> Self
    where
        I: IntoIterator<Item = TupleOp>,
    {
        let mut d = Delta::new();
        for op in ops {
            d.apply_op(op);
        }
        d
    }

    /// Pure-insert delta from a relation.
    pub fn inserts_from(rel: &Relation) -> Self {
        let mut d = Delta::new();
        for (t, n) in rel.iter_counted() {
            d.add(t.clone(), n as i64);
        }
        d
    }

    /// Pure-delete delta from a relation.
    pub fn deletes_from(rel: &Relation) -> Self {
        let mut d = Delta::new();
        for (t, n) in rel.iter_counted() {
            d.add(t.clone(), -(n as i64));
        }
        d
    }

    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of distinct tuples with a nonzero net change.
    pub fn distinct_len(&self) -> usize {
        self.changes.len()
    }

    /// Net multiplicity change for a tuple.
    pub fn net(&self, t: &Tuple) -> i64 {
        self.changes.get(t).copied().unwrap_or(0)
    }

    /// Add `n` (signed) to a tuple's net change.
    pub fn add(&mut self, t: Tuple, n: i64) {
        if n == 0 {
            return;
        }
        use std::collections::btree_map::Entry;
        match self.changes.entry(t) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += n;
                if *e.get() == 0 {
                    e.remove();
                }
            }
            Entry::Vacant(v) => {
                v.insert(n);
            }
        }
    }

    pub fn insert(&mut self, t: Tuple) {
        self.add(t, 1);
    }

    pub fn delete(&mut self, t: Tuple) {
        self.add(t, -1);
    }

    pub fn apply_op(&mut self, op: TupleOp) {
        match op {
            TupleOp::Insert(t) => self.insert(t),
            TupleOp::Delete(t) => self.delete(t),
        }
    }

    /// Merge another delta into this one (composition of changes).
    pub fn merge(&mut self, other: &Delta) {
        for (t, n) in &other.changes {
            self.add(t.clone(), *n);
        }
    }

    /// The composed delta `self; other`.
    pub fn then(&self, other: &Delta) -> Delta {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// The inverse delta (undoes this one).
    pub fn inverse(&self) -> Delta {
        Delta {
            changes: self.changes.iter().map(|(t, n)| (t.clone(), -n)).collect(),
        }
    }

    /// Iterate `(tuple, net-change)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.changes.iter().map(|(t, &n)| (t, n))
    }

    /// Expand to a canonical op list: all deletes (sorted), then all
    /// inserts (sorted), each repeated per |net|. Deletes first so that a
    /// modification shrinks before it grows, and so replaying never
    /// transiently exceeds final multiplicities.
    pub fn to_ops(&self) -> Vec<TupleOp> {
        let mut ops = Vec::new();
        for (t, n) in &self.changes {
            if *n < 0 {
                for _ in 0..(-n) {
                    ops.push(TupleOp::Delete(t.clone()));
                }
            }
        }
        for (t, n) in &self.changes {
            if *n > 0 {
                for _ in 0..*n {
                    ops.push(TupleOp::Insert(t.clone()));
                }
            }
        }
        ops
    }

    /// Apply to a relation. Deletes are clamped at zero multiplicity
    /// (monus), matching warehouse-side idempotent application.
    pub fn apply_to(&self, rel: &mut Relation) -> Result<(), SchemaError> {
        for (t, n) in &self.changes {
            if *n < 0 {
                rel.delete_n(t, (-n) as u64);
            }
        }
        for (t, n) in &self.changes {
            if *n > 0 {
                rel.insert_n(t.clone(), *n as u64)?;
            }
        }
        Ok(())
    }

    /// Positive part as a relation (for display / joining in delta rules).
    pub fn inserts_relation(&self, schema: &Schema) -> Result<Relation, SchemaError> {
        let mut r = Relation::new(schema.clone());
        for (t, n) in &self.changes {
            if *n > 0 {
                r.insert_n(t.clone(), *n as u64)?;
            }
        }
        Ok(r)
    }

    /// Negative part (as positive multiplicities) as a relation.
    pub fn deletes_relation(&self, schema: &Schema) -> Result<Relation, SchemaError> {
        let mut r = Relation::new(schema.clone());
        for (t, n) in &self.changes {
            if *n < 0 {
                r.insert_n(t.clone(), (-n) as u64)?;
            }
        }
        Ok(r)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, op) in self.to_ops().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_then_delete_cancels() {
        let mut d = Delta::new();
        d.insert(tuple![1]);
        d.delete(tuple![1]);
        assert!(d.is_empty());
    }

    #[test]
    fn merge_composes() {
        let mut a = Delta::new();
        a.insert(tuple![1]);
        a.insert(tuple![2]);
        let mut b = Delta::new();
        b.delete(tuple![1]);
        b.insert(tuple![3]);
        let c = a.then(&b);
        assert_eq!(c.net(&tuple![1]), 0);
        assert_eq!(c.net(&tuple![2]), 1);
        assert_eq!(c.net(&tuple![3]), 1);
    }

    #[test]
    fn inverse_undoes() {
        let mut d = Delta::new();
        d.add(tuple![1], 3);
        d.add(tuple![2], -2);
        assert!(d.then(&d.inverse()).is_empty());
    }

    #[test]
    fn to_ops_deletes_first() {
        let mut d = Delta::new();
        d.insert(tuple![2]);
        d.delete(tuple![1]);
        let ops = d.to_ops();
        assert_eq!(ops[0], TupleOp::Delete(tuple![1]));
        assert_eq!(ops[1], TupleOp::Insert(tuple![2]));
    }

    #[test]
    fn apply_to_relation_round_trip() {
        let schema = Schema::ints(&["a"]);
        let mut r = Relation::new(schema.clone());
        r.insert_n(tuple![1], 2).unwrap();
        let mut d = Delta::new();
        d.add(tuple![1], -1);
        d.add(tuple![5], 2);
        d.apply_to(&mut r).unwrap();
        assert_eq!(r.multiplicity(&tuple![1]), 1);
        assert_eq!(r.multiplicity(&tuple![5]), 2);
        d.inverse().apply_to(&mut r).unwrap();
        assert_eq!(r.multiplicity(&tuple![1]), 2);
        assert_eq!(r.multiplicity(&tuple![5]), 0);
    }

    #[test]
    fn from_ops_and_parts() {
        let d = Delta::from_ops([
            TupleOp::Insert(tuple![1]),
            TupleOp::Insert(tuple![1]),
            TupleOp::Delete(tuple![2]),
        ]);
        let schema = Schema::ints(&["a"]);
        let ins = d.inserts_relation(&schema).unwrap();
        let del = d.deletes_relation(&schema).unwrap();
        assert_eq!(ins.multiplicity(&tuple![1]), 2);
        assert_eq!(del.multiplicity(&tuple![2]), 1);
    }

    #[test]
    fn op_inverse() {
        let op = TupleOp::Insert(tuple![1]);
        assert_eq!(op.inverse(), TupleOp::Delete(tuple![1]));
        assert_eq!(op.inverse().inverse(), op);
    }
}
