//! Bag (multiset) relations.
//!
//! Incremental view maintenance over select-project-join views is only
//! correct under bag semantics (Griffin & Libkin, SIGMOD '95 — the paper's
//! ref \[3\]): a projection can map two distinct base tuples to the same view
//! tuple, and deleting one base tuple must not delete the view tuple while
//! a derivation remains. Relations therefore store a multiplicity per
//! distinct tuple.

use crate::schema::{Schema, SchemaError};
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A multiset of tuples conforming to a [`Schema`].
///
/// Backed by a `BTreeMap<Tuple, u64>` so iteration order is deterministic —
/// important for golden tests that render the paper's tables byte-for-byte.
///
/// The schema is held behind an `Arc`: schemas are immutable after
/// catalog construction, so cloning a relation (or instantiating many
/// empty relations over one view definition) shares the attribute list
/// instead of copying it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    schema: Arc<Schema>,
    rows: BTreeMap<Tuple, u64>,
    /// Total multiplicity (cached so `len` is O(1)).
    count: u64,
}

impl Relation {
    /// Empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation::shared(Arc::new(schema))
    }

    /// Empty relation sharing an existing schema handle (no deep copy).
    pub fn shared(schema: Arc<Schema>) -> Self {
        Relation {
            schema,
            rows: BTreeMap::new(),
            count: 0,
        }
    }

    /// Build from tuples, validating each against the schema.
    pub fn from_tuples<I>(schema: Schema, tuples: I) -> Result<Self, SchemaError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples counting multiplicity.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Number of *distinct* tuples.
    pub fn distinct_len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Multiplicity of a tuple (0 when absent).
    pub fn multiplicity(&self, t: &Tuple) -> u64 {
        self.rows.get(t).copied().unwrap_or(0)
    }

    /// Does the relation contain at least one copy of `t`?
    pub fn contains(&self, t: &Tuple) -> bool {
        self.multiplicity(t) > 0
    }

    /// Insert one copy of a tuple (schema-checked).
    pub fn insert(&mut self, t: Tuple) -> Result<(), SchemaError> {
        self.insert_n(t, 1)
    }

    /// Insert `n` copies.
    pub fn insert_n(&mut self, t: Tuple, n: u64) -> Result<(), SchemaError> {
        if n == 0 {
            return Ok(());
        }
        self.schema.check(&t)?;
        *self.rows.entry(t).or_insert(0) += n;
        self.count += n;
        Ok(())
    }

    /// Remove one copy of a tuple. Returns `true` when a copy was present
    /// and removed; deleting an absent tuple is a no-op returning `false`
    /// (sources may race; the warehouse treats this as idempotent).
    pub fn delete(&mut self, t: &Tuple) -> bool {
        self.delete_n(t, 1) > 0
    }

    /// Remove up to `n` copies; returns how many were actually removed.
    pub fn delete_n(&mut self, t: &Tuple, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        match self.rows.get_mut(t) {
            None => 0,
            Some(m) => {
                let removed = (*m).min(n);
                *m -= removed;
                if *m == 0 {
                    self.rows.remove(t);
                }
                self.count -= removed;
                removed
            }
        }
    }

    /// Remove all tuples.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.count = 0;
    }

    /// Iterate `(tuple, multiplicity)` pairs in deterministic (sorted) order.
    pub fn iter_counted(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.rows.iter().map(|(t, &n)| (t, n))
    }

    /// Iterate tuples, repeating each according to its multiplicity.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows
            .iter()
            .flat_map(|(t, &n)| std::iter::repeat_n(t, n as usize))
    }

    /// Distinct tuples, sorted.
    pub fn distinct(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.keys()
    }

    /// Collect all tuples (with multiplicity) into a vector.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter().cloned().collect()
    }

    /// Multiset union.
    pub fn union(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        for (t, n) in other.iter_counted() {
            *out.rows.entry(t.clone()).or_insert(0) += n;
            out.count += n;
        }
        out
    }

    /// Multiset difference (`self ∸ other`, monus semantics).
    pub fn difference(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        for (t, n) in other.iter_counted() {
            out.delete_n(t, n);
        }
        out
    }

    /// A content fingerprint independent of representation, used by the
    /// consistency oracle to compare states cheaply.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for (t, n) in self.iter_counted() {
            t.hash(&mut h);
            n.hash(&mut h);
        }
        h.finish()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (t, n) in self.iter_counted() {
            for _ in 0..n {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                write!(f, "{t}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(names: &[&str]) -> Relation {
        Relation::new(Schema::ints(names))
    }

    #[test]
    fn multiset_insert_delete() {
        let mut r = rel(&["a"]);
        r.insert(tuple![1]).unwrap();
        r.insert(tuple![1]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.distinct_len(), 1);
        assert_eq!(r.multiplicity(&tuple![1]), 2);
        assert!(r.delete(&tuple![1]));
        assert_eq!(r.multiplicity(&tuple![1]), 1);
        assert!(r.delete(&tuple![1]));
        assert!(!r.delete(&tuple![1]), "deleting absent tuple is a no-op");
        assert!(r.is_empty());
    }

    #[test]
    fn schema_enforced_on_insert() {
        let mut r = rel(&["a", "b"]);
        assert!(r.insert(tuple![1]).is_err());
        assert!(r.insert(tuple![1, "x"]).is_err());
        assert!(r.insert(tuple![1, 2]).is_ok());
    }

    #[test]
    fn union_adds_multiplicities() {
        let mut a = rel(&["a"]);
        let mut b = rel(&["a"]);
        a.insert_n(tuple![1], 2).unwrap();
        b.insert_n(tuple![1], 3).unwrap();
        b.insert(tuple![2]).unwrap();
        let u = a.union(&b);
        assert_eq!(u.multiplicity(&tuple![1]), 5);
        assert_eq!(u.multiplicity(&tuple![2]), 1);
        assert_eq!(u.len(), 6);
    }

    #[test]
    fn difference_is_monus() {
        let mut a = rel(&["a"]);
        let mut b = rel(&["a"]);
        a.insert_n(tuple![1], 2).unwrap();
        b.insert_n(tuple![1], 5).unwrap();
        let d = a.difference(&b);
        assert_eq!(d.multiplicity(&tuple![1]), 0);
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn delete_n_partial() {
        let mut r = rel(&["a"]);
        r.insert_n(tuple![7], 3).unwrap();
        assert_eq!(r.delete_n(&tuple![7], 2), 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.delete_n(&tuple![7], 10), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn deterministic_iteration_order() {
        let mut r = rel(&["a"]);
        for v in [3i64, 1, 2] {
            r.insert(tuple![v]).unwrap();
        }
        let vals: Vec<i64> = r.iter().map(|t| t.get(0).as_i64().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut a = rel(&["a"]);
        let mut b = rel(&["a"]);
        a.insert(tuple![1]).unwrap();
        b.insert(tuple![1]).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.insert(tuple![2]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        // multiplicity matters
        let mut c = a.clone();
        c.insert(tuple![1]).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn display_sorted() {
        let mut r = rel(&["a", "b"]);
        r.insert(tuple![2, 3]).unwrap();
        r.insert(tuple![1, 2]).unwrap();
        assert_eq!(r.to_string(), "{[1, 2], [2, 3]}");
    }
}
