//! View definitions: select-project-join views and aggregate views.
//!
//! A view is defined over named base relations from a [`Catalog`]. The join
//! input schema concatenates the source schemas with attributes qualified
//! as `"{relation}.{attr}"` (a second occurrence of the same relation in a
//! self-join is qualified `"{relation}#2.{attr}"`, and so on). Predicates
//! and projections are written against these qualified names and resolved
//! to positions at build time.

use crate::catalog::Catalog;
use crate::expr::Expr;
use crate::schema::{Attribute, RelationName, Schema, SchemaError};
use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Name of a warehouse view.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ViewName(Arc<str>);

impl ViewName {
    pub fn new(name: impl AsRef<str>) -> Self {
        ViewName(Arc::from(name.as_ref()))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ViewName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ViewName {
    fn from(s: &str) -> Self {
        ViewName::new(s)
    }
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        };
        f.write_str(s)
    }
}

/// One aggregate output column: a function over an input expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    pub func: AggFunc,
    /// Input expression over the join schema; ignored for `Count`.
    pub input: Expr,
    /// Output attribute name.
    pub output: String,
}

/// The core of every view: a select-project-join block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpjCore {
    /// Ordered base relations (repeats allowed for self-joins).
    pub sources: Vec<RelationName>,
    /// Selection/join predicate over the qualified join schema, resolved
    /// to `Col` positions.
    pub predicate: Expr,
    /// Projection expressions (resolved). Empty means identity projection.
    pub projection: Vec<Expr>,
    /// The qualified join (pre-projection) schema.
    pub join_schema: Schema,
    /// Output schema after projection.
    pub output_schema: Schema,
    /// Start offset of each source's attributes within `join_schema`.
    pub offsets: Vec<usize>,
}

/// A complete view definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewDef {
    pub name: ViewName,
    pub core: SpjCore,
    /// Group-by expressions over the *core output* schema; only meaningful
    /// when `aggregates` is non-empty.
    pub group_by: Vec<Expr>,
    /// Aggregates over the *core output* schema. Empty → plain SPJ view.
    pub aggregates: Vec<Aggregate>,
    /// Final output schema (= core output for SPJ views; group-by +
    /// aggregate columns for aggregate views). Shared by `Arc` so that
    /// instantiating warehouse relations, materializations, and oracle
    /// baselines from one definition never copies the attribute list.
    pub schema: Arc<Schema>,
}

impl ViewDef {
    /// Start building a view definition.
    ///
    /// ```
    /// use mvc_relational::{Catalog, Expr, Schema, ViewDef};
    ///
    /// let cat = Catalog::new()
    ///     .with("R", Schema::ints(&["a", "b"]))
    ///     .with("S", Schema::ints(&["b", "c"]));
    /// let v = ViewDef::builder("V")
    ///     .from("R")
    ///     .from("S")
    ///     .join_on("R.b", "S.b")
    ///     .filter(Expr::gt(Expr::named("R.a"), Expr::value(0)))
    ///     .project(["R.a", "S.c"])
    ///     .build(&cat)
    ///     .unwrap();
    /// assert_eq!(v.schema.arity(), 2);
    /// assert_eq!(v.base_relations().len(), 2);
    /// ```
    pub fn builder(name: impl Into<ViewName>) -> ViewDefBuilder {
        ViewDefBuilder {
            name: name.into(),
            sources: Vec::new(),
            predicates: Vec::new(),
            projection: None,
            group_by: Vec::new(),
            aggregates: Vec::new(),
        }
    }

    /// Shorthand: a copy view `V = R`.
    pub fn copy_of(
        name: impl Into<ViewName>,
        rel: impl Into<RelationName>,
        catalog: &Catalog,
    ) -> Result<ViewDef, SchemaError> {
        ViewDef::builder(name).from(rel).build(catalog)
    }

    /// Shorthand: natural join on explicitly given attribute pairs,
    /// e.g. `join("V1", [("R","S",&[("b","b")])], catalog)` builds
    /// `V1 = R ⋈_{R.b=S.b} S`.
    pub fn is_aggregate(&self) -> bool {
        !self.aggregates.is_empty()
    }

    /// Distinct base relations this view reads.
    pub fn base_relations(&self) -> BTreeSet<RelationName> {
        self.core.sources.iter().cloned().collect()
    }

    /// True when an update to `rel` *may* affect this view. Implements the
    /// selection-based irrelevance test of the paper's ref \[7\]: a changed
    /// tuple is irrelevant when, for every occurrence of `rel` in the join,
    /// some selection conjunct local to that occurrence rejects it.
    pub fn relevant_tuple(&self, rel: &RelationName, tuple: &Tuple) -> bool {
        let mut found = false;
        for (k, src) in self.core.sources.iter().enumerate() {
            if src != rel {
                continue;
            }
            found = true;
            if self.occurrence_accepts(k, tuple) {
                return true;
            }
        }
        // relation not in the view at all → irrelevant
        if !found {
            return false;
        }
        false
    }

    /// True when `tuple`, placed at source occurrence `k`, passes every
    /// predicate conjunct that reads only that occurrence's columns.
    fn occurrence_accepts(&self, k: usize, tuple: &Tuple) -> bool {
        let lo = self.core.offsets[k];
        let hi = lo + tuple.arity();
        for conj in conjuncts(&self.core.predicate) {
            let cols = conj.columns();
            if cols.is_empty() {
                continue;
            }
            if cols.iter().all(|&c| c >= lo && c < hi) {
                let local = conj
                    .remap_columns(&|c| {
                        if (lo..hi).contains(&c) {
                            Some(c - lo)
                        } else {
                            None
                        }
                    })
                    .expect("columns checked local");
                match local.matches(tuple) {
                    Ok(true) => {}
                    // rejected or evaluation error → this occurrence cannot
                    // derive anything from the tuple
                    _ => return false,
                }
            }
        }
        true
    }

    /// Is this view affected by *any* of the given changed tuples of `rel`?
    pub fn relevant_update(&self, rel: &RelationName, tuples: &[Tuple]) -> bool {
        tuples.iter().any(|t| self.relevant_tuple(rel, t))
    }
}

/// Split a predicate into its top-level conjuncts.
pub fn conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Expr::True => {}
            other => out.push(other),
        }
    }
    walk(e, &mut out);
    out
}

/// Builder for [`ViewDef`].
pub struct ViewDefBuilder {
    name: ViewName,
    sources: Vec<RelationName>,
    predicates: Vec<Expr>,
    projection: Option<Vec<(Expr, Option<String>)>>,
    group_by: Vec<Expr>,
    aggregates: Vec<Aggregate>,
}

impl ViewDefBuilder {
    /// Add a base relation to the join (order matters for the join schema).
    pub fn from(mut self, rel: impl Into<RelationName>) -> Self {
        self.sources.push(rel.into());
        self
    }

    /// Add a predicate conjunct (qualified `Named` columns allowed).
    pub fn filter(mut self, pred: Expr) -> Self {
        self.predicates.push(pred);
        self
    }

    /// Equi-join shorthand: `R.b = S.b` written as `.join_on("R.b", "S.b")`.
    pub fn join_on(self, left: impl Into<String>, right: impl Into<String>) -> Self {
        self.filter(Expr::eq(
            Expr::Named(left.into()),
            Expr::Named(right.into()),
        ))
    }

    /// Project onto named columns.
    pub fn project<I, S>(mut self, cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cols: Vec<(Expr, Option<String>)> = cols
            .into_iter()
            .map(|c| (Expr::Named(c.into()), None))
            .collect();
        self.projection = Some(cols);
        self
    }

    /// Project a computed expression with an output name.
    pub fn project_expr(mut self, expr: Expr, name: impl Into<String>) -> Self {
        self.projection
            .get_or_insert_with(Vec::new)
            .push((expr, Some(name.into())));
        self
    }

    /// Group by an expression (for aggregate views).
    pub fn group_by(mut self, expr: Expr) -> Self {
        self.group_by.push(expr);
        self
    }

    /// Add an aggregate output.
    pub fn aggregate(mut self, func: AggFunc, input: Expr, output: impl Into<String>) -> Self {
        self.aggregates.push(Aggregate {
            func,
            input,
            output: output.into(),
        });
        self
    }

    /// Resolve against the catalog and produce the immutable [`ViewDef`].
    pub fn build(self, catalog: &Catalog) -> Result<ViewDef, SchemaError> {
        if self.sources.is_empty() {
            return Err(SchemaError::UnknownAttribute(
                "view has no source relations".into(),
            ));
        }
        // Build the qualified join schema.
        let mut attrs: Vec<Attribute> = Vec::new();
        let mut offsets = Vec::with_capacity(self.sources.len());
        let mut occurrence_count: std::collections::HashMap<&RelationName, usize> =
            std::collections::HashMap::new();
        for rel in &self.sources {
            let schema = catalog.require(rel)?;
            let occ = occurrence_count.entry(rel).or_insert(0);
            *occ += 1;
            let prefix = if *occ == 1 {
                rel.as_str().to_owned()
            } else {
                format!("{}#{}", rel.as_str(), occ)
            };
            offsets.push(attrs.len());
            for a in schema.attributes() {
                attrs.push(Attribute::new(format!("{prefix}.{}", a.name), a.ty));
            }
        }
        let join_schema = Schema::new(attrs)?;

        // Resolve predicate.
        let predicate = Expr::all(
            self.predicates
                .iter()
                .map(|p| p.resolve(&join_schema))
                .collect::<Result<Vec<_>, _>>()?,
        );

        // Resolve projection and compute core output schema.
        let (projection, output_schema) = match &self.projection {
            None => (Vec::new(), strip_qualifiers(&join_schema)?),
            Some(cols) => {
                let mut exprs = Vec::with_capacity(cols.len());
                let mut out_attrs = Vec::with_capacity(cols.len());
                for (e, name) in cols {
                    let resolved = e.resolve(&join_schema)?;
                    let out_name = match name {
                        Some(n) => n.clone(),
                        None => match e {
                            Expr::Named(n) => unqualify(n),
                            other => format!("{other}"),
                        },
                    };
                    let ty = infer_type(&resolved, &join_schema);
                    out_attrs.push(Attribute::new(out_name, ty));
                    exprs.push(resolved);
                }
                (exprs, Schema::new(dedup_names(out_attrs))?)
            }
        };

        let core = SpjCore {
            sources: self.sources,
            predicate,
            projection,
            join_schema,
            output_schema: output_schema.clone(),
            offsets,
        };

        // Aggregates resolve against the core *output* schema.
        if self.aggregates.is_empty() {
            if !self.group_by.is_empty() {
                return Err(SchemaError::UnknownAttribute(
                    "group_by without aggregates".into(),
                ));
            }
            return Ok(ViewDef {
                name: self.name,
                schema: Arc::new(output_schema),
                core,
                group_by: Vec::new(),
                aggregates: Vec::new(),
            });
        }

        let group_by = self
            .group_by
            .iter()
            .map(|g| g.resolve(&output_schema))
            .collect::<Result<Vec<_>, _>>()?;
        let aggregates = self
            .aggregates
            .iter()
            .map(|a| {
                Ok(Aggregate {
                    func: a.func,
                    input: a.input.resolve(&output_schema)?,
                    output: a.output.clone(),
                })
            })
            .collect::<Result<Vec<_>, SchemaError>>()?;

        let mut attrs = Vec::new();
        for (i, g) in group_by.iter().enumerate() {
            let name = match &self.group_by[i] {
                Expr::Named(n) => unqualify(n),
                other => format!("{other}"),
            };
            attrs.push(Attribute::new(name, infer_type(g, &output_schema)));
        }
        for a in &aggregates {
            let ty = match a.func {
                AggFunc::Count => crate::value::ValueType::Int,
                AggFunc::Avg => crate::value::ValueType::Float,
                _ => infer_type(&a.input, &output_schema),
            };
            attrs.push(Attribute::new(a.output.clone(), ty));
        }
        let schema = Schema::new(dedup_names(attrs))?;

        Ok(ViewDef {
            name: self.name,
            core,
            group_by,
            aggregates,
            schema: Arc::new(schema),
        })
    }
}

/// Strip `rel.` qualifiers when unambiguous; keep qualified otherwise.
fn strip_qualifiers(schema: &Schema) -> Result<Schema, SchemaError> {
    let mut counts = std::collections::HashMap::new();
    for a in schema.attributes() {
        *counts.entry(unqualify(&a.name)).or_insert(0usize) += 1;
    }
    let attrs = schema
        .attributes()
        .iter()
        .map(|a| {
            let short = unqualify(&a.name);
            if counts[&short] == 1 {
                Attribute::new(short, a.ty)
            } else {
                a.clone()
            }
        })
        .collect();
    Schema::new(dedup_names(attrs))
}

fn unqualify(name: &str) -> String {
    match name.rsplit_once('.') {
        Some((_, attr)) => attr.to_owned(),
        None => name.to_owned(),
    }
}

fn dedup_names(attrs: Vec<Attribute>) -> Vec<Attribute> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(attrs.len());
    for a in attrs {
        let mut candidate = a.name.clone();
        let mut k = 2usize;
        while seen.contains(&candidate) {
            candidate = format!("{}_{k}", a.name);
            k += 1;
        }
        seen.insert(candidate.clone());
        out.push(Attribute::new(candidate, a.ty));
    }
    out
}

/// Best-effort static type inference for output schemas.
fn infer_type(e: &Expr, input: &Schema) -> crate::value::ValueType {
    use crate::value::ValueType;
    match e {
        Expr::Col(i) => input.value_type(*i).unwrap_or(ValueType::Null),
        Expr::Const(v) => v.value_type(),
        Expr::Arith(op, a, b) => {
            let ta = infer_type(a, input);
            let tb = infer_type(b, input);
            if matches!(op, crate::expr::ArithOp::Div) {
                ValueType::Float
            } else if ta == ValueType::Int && tb == ValueType::Int {
                ValueType::Int
            } else {
                ValueType::Float
            }
        }
        Expr::Cmp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(..) | Expr::IsNull(..) => {
            ValueType::Bool
        }
        Expr::True => ValueType::Bool,
        Expr::Named(_) => ValueType::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn catalog() -> Catalog {
        Catalog::new()
            .with("R", Schema::ints(&["a", "b"]))
            .with("S", Schema::ints(&["b", "c"]))
            .with("T", Schema::ints(&["c", "d"]))
    }

    #[test]
    fn join_schema_is_qualified() {
        let v = ViewDef::builder("V1")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .build(&catalog())
            .unwrap();
        let names: Vec<_> = v
            .core
            .join_schema
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["R.a", "R.b", "S.b", "S.c"]);
        assert_eq!(v.core.offsets, vec![0, 2]);
    }

    #[test]
    fn self_join_occurrences_qualified() {
        let v = ViewDef::builder("V")
            .from("R")
            .from("R")
            .join_on("R.b", "R#2.a")
            .build(&catalog())
            .unwrap();
        assert!(v
            .core
            .join_schema
            .attributes()
            .iter()
            .any(|a| a.name == "R#2.a"));
    }

    #[test]
    fn default_output_schema_strips_unambiguous_qualifiers() {
        let v = ViewDef::builder("V1")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .build(&catalog())
            .unwrap();
        let names: Vec<_> = v
            .schema
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        // `b` is ambiguous (R.b and S.b both present) → stays qualified
        assert_eq!(names, vec!["a", "R.b", "S.b", "c"]);
    }

    #[test]
    fn projection_resolves_names() {
        let v = ViewDef::builder("V1")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .project(["R.a", "R.b", "S.c"])
            .build(&catalog())
            .unwrap();
        assert_eq!(v.schema.arity(), 3);
        assert_eq!(v.core.projection.len(), 3);
        assert_eq!(v.core.projection[0], Expr::Col(0));
        assert_eq!(v.core.projection[2], Expr::Col(3));
    }

    #[test]
    fn base_relations_dedup() {
        let v = ViewDef::builder("V")
            .from("R")
            .from("R")
            .build(&catalog())
            .unwrap();
        assert_eq!(v.base_relations().len(), 1);
    }

    #[test]
    fn relevance_unrelated_relation() {
        let v = ViewDef::builder("V1")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .build(&catalog())
            .unwrap();
        assert!(!v.relevant_tuple(&"T".into(), &tuple![1, 2]));
        assert!(v.relevant_tuple(&"R".into(), &tuple![1, 2]));
    }

    #[test]
    fn relevance_local_selection_rules_out() {
        // V = σ_{R.a > 10}(R ⋈ S)
        let v = ViewDef::builder("V")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .filter(Expr::gt(Expr::named("R.a"), Expr::value(10)))
            .build(&catalog())
            .unwrap();
        assert!(
            !v.relevant_tuple(&"R".into(), &tuple![5, 2]),
            "a=5 fails a>10"
        );
        assert!(v.relevant_tuple(&"R".into(), &tuple![11, 2]));
        // S tuples unaffected by the R-local conjunct
        assert!(v.relevant_tuple(&"S".into(), &tuple![2, 3]));
    }

    #[test]
    fn relevance_self_join_any_occurrence() {
        // V = R ⋈_{R.b=R#2.a} σ_{R#2.b>5}(R)
        let v = ViewDef::builder("V")
            .from("R")
            .from("R")
            .join_on("R.b", "R#2.a")
            .filter(Expr::gt(Expr::named("R#2.b"), Expr::value(5)))
            .build(&catalog())
            .unwrap();
        // tuple [1,2]: as occurrence 1 → fine; occurrence 2 → fails b>5.
        // Relevant overall because occurrence 1 accepts it.
        assert!(v.relevant_tuple(&"R".into(), &tuple![1, 2]));
    }

    #[test]
    fn aggregate_view_schema() {
        let v = ViewDef::builder("Agg")
            .from("R")
            .group_by(Expr::named("a"))
            .aggregate(AggFunc::Count, Expr::True, "n")
            .aggregate(AggFunc::Sum, Expr::named("b"), "total")
            .build(&catalog())
            .unwrap();
        assert!(v.is_aggregate());
        let names: Vec<_> = v
            .schema
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "n", "total"]);
    }

    #[test]
    fn group_by_without_aggregates_rejected() {
        assert!(ViewDef::builder("V")
            .from("R")
            .group_by(Expr::named("a"))
            .build(&catalog())
            .is_err());
    }

    #[test]
    fn empty_sources_rejected() {
        assert!(ViewDef::builder("V").build(&catalog()).is_err());
    }

    #[test]
    fn conjunct_split() {
        let e = Expr::and(
            Expr::eq(Expr::col(0), Expr::col(1)),
            Expr::and(Expr::True, Expr::lt(Expr::col(2), Expr::value(5))),
        );
        assert_eq!(conjuncts(&e).len(), 2);
    }
}
