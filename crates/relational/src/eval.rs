//! Query evaluation: a left-deep hash-join pipeline over bag relations.
//!
//! Evaluation takes the base relations from a [`StateProvider`], so the
//! same code path computes a view at the current source state, at an MVCC
//! as-of snapshot, or over an [`Overlay`](crate::database::Overlay) that
//! substitutes a delta for one relation (the delta rule of
//! [`maintain`](crate::maintain)).

use crate::database::StateProvider;
use crate::delta::Delta;
use crate::expr::{CmpOp, Expr, ExprError};
use crate::relation::Relation;
use crate::schema::{RelationName, SchemaError};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::viewdef::{conjuncts, AggFunc, SpjCore, ViewDef};
use std::collections::HashMap;
use std::fmt;

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    MissingRelation(RelationName),
    Schema(SchemaError),
    Expr(ExprError),
    /// Supplied relation count does not match the view's source list.
    SourceCountMismatch {
        expected: usize,
        actual: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingRelation(n) => write!(f, "missing relation `{n}`"),
            EvalError::Schema(e) => write!(f, "schema error: {e}"),
            EvalError::Expr(e) => write!(f, "expression error: {e}"),
            EvalError::SourceCountMismatch { expected, actual } => {
                write!(f, "expected {expected} source relations, got {actual}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<SchemaError> for EvalError {
    fn from(e: SchemaError) -> Self {
        EvalError::Schema(e)
    }
}

impl From<ExprError> for EvalError {
    fn from(e: ExprError) -> Self {
        EvalError::Expr(e)
    }
}

/// Evaluate a full view definition (SPJ core plus optional aggregation).
pub fn eval_view(def: &ViewDef, provider: &dyn StateProvider) -> Result<Relation, EvalError> {
    let core = eval_core(&def.core, provider)?;
    if def.is_aggregate() {
        aggregate(def, &core)
    } else {
        Ok(core)
    }
}

/// Evaluate just the SPJ core against a provider. Provider state is
/// borrowed where the provider allows it — the join below only reads.
pub fn eval_core(core: &SpjCore, provider: &dyn StateProvider) -> Result<Relation, EvalError> {
    let rels: Vec<std::borrow::Cow<'_, Relation>> = core
        .sources
        .iter()
        .map(|n| {
            provider
                .fetch(n)
                .ok_or_else(|| EvalError::MissingRelation(n.clone()))
        })
        .collect::<Result<_, _>>()?;
    eval_core_with(core, &rels)
}

/// Evaluate the SPJ core with explicitly supplied relations, one per source
/// occurrence (in order). This is the entry point the delta rules use to
/// substitute a delta for one occurrence. Accepts owned or borrowed
/// relations (`Relation`, `Cow<Relation>`, …) — evaluation never mutates.
pub fn eval_core_with<R: std::borrow::Borrow<Relation>>(
    core: &SpjCore,
    rels: &[R],
) -> Result<Relation, EvalError> {
    let joined = eval_join_with(core, rels)?;
    project_relation(core, &joined)
}

/// Evaluate only the select-join part, returning *pre-projection* rows in
/// the qualified [`SpjCore::join_schema`]. Strobe-style view managers keep
/// their mirror at this level so that base-tuple deletes can be applied by
/// segment matching without re-querying the sources.
pub fn eval_join_with<R: std::borrow::Borrow<Relation>>(
    core: &SpjCore,
    rels: &[R],
) -> Result<Relation, EvalError> {
    let rels: Vec<&Relation> = rels.iter().map(std::borrow::Borrow::borrow).collect();
    if rels.len() != core.sources.len() {
        return Err(EvalError::SourceCountMismatch {
            expected: core.sources.len(),
            actual: rels.len(),
        });
    }

    // Classify predicate conjuncts by the first pipeline stage at which all
    // their columns are bound.
    let all_conjuncts = conjuncts(&core.predicate);
    let stage_end: Vec<usize> = core
        .offsets
        .iter()
        .zip(&rels)
        .map(|(off, r)| off + r.schema().arity())
        .collect();
    let stage_of = |e: &Expr| -> usize {
        let max_col = e.columns().into_iter().max().unwrap_or(0);
        stage_end
            .iter()
            .position(|&end| max_col < end)
            .unwrap_or(stage_end.len() - 1)
    };
    let mut stage_conjuncts: Vec<Vec<&Expr>> = vec![Vec::new(); rels.len()];
    for c in all_conjuncts {
        stage_conjuncts[stage_of(c)].push(c);
    }

    // Stage 0: filter the first relation.
    let mut working: Vec<(Tuple, u64)> = Vec::new();
    for (t, n) in rels[0].iter_counted() {
        if passes_all(&stage_conjuncts[0], t)? {
            working.push((t.clone(), n));
        }
    }

    // Stages 1..: hash join each subsequent relation.
    for k in 1..rels.len() {
        let off = core.offsets[k];
        let arity = rels[k].schema().arity();
        // Split stage conjuncts into equi-join keys and residual filters.
        let mut left_keys: Vec<usize> = Vec::new();
        let mut right_keys: Vec<usize> = Vec::new();
        let mut residual: Vec<&Expr> = Vec::new();
        for c in &stage_conjuncts[k] {
            if let Expr::Cmp(CmpOp::Eq, a, b) = c {
                if let (Expr::Col(i), Expr::Col(j)) = (a.as_ref(), b.as_ref()) {
                    let (lo, hi) = if i < j { (*i, *j) } else { (*j, *i) };
                    if lo < off && (off..off + arity).contains(&hi) {
                        left_keys.push(lo);
                        right_keys.push(hi - off);
                        continue;
                    }
                }
            }
            residual.push(c);
        }

        // Build side: hash the new relation on its join-key columns.
        let mut table: HashMap<Vec<Value>, Vec<(&Tuple, u64)>> = HashMap::new();
        for (t, n) in rels[k].iter_counted() {
            let key: Vec<Value> = right_keys.iter().map(|&c| t.get(c).clone()).collect();
            table.entry(key).or_default().push((t, n));
        }

        // Probe side.
        let mut next: Vec<(Tuple, u64)> = Vec::new();
        for (lt, ln) in &working {
            let key: Vec<Value> = left_keys.iter().map(|&c| lt.get(c).clone()).collect();
            // Null join keys never match (SQL semantics).
            if key.iter().any(Value::is_null) && !left_keys.is_empty() {
                continue;
            }
            if let Some(matches) = table.get(&key) {
                for (rt, rn) in matches {
                    let joined = lt.concat(rt);
                    if passes_all(&residual, &joined)? {
                        next.push((joined, ln * rn));
                    }
                }
            }
        }
        working = next;
    }

    let mut out = Relation::new(core.join_schema.clone());
    for (t, n) in working {
        out.insert_n(t, n)?;
    }
    Ok(out)
}

/// Apply the core's projection to a join-level relation.
pub fn project_relation(core: &SpjCore, joined: &Relation) -> Result<Relation, EvalError> {
    let mut out = Relation::new(core.output_schema.clone());
    if core.projection.is_empty() {
        for (t, n) in joined.iter_counted() {
            out.insert_n(t.clone(), n)?;
        }
    } else {
        for (t, n) in joined.iter_counted() {
            let vals: Vec<Value> = core
                .projection
                .iter()
                .map(|e| e.eval(t))
                .collect::<Result<_, _>>()?;
            out.insert_n(Tuple::new(vals), n)?;
        }
    }
    Ok(out)
}

/// Apply the core's projection to a join-level delta. Projection is linear
/// over bags, so net multiplicities push through directly.
pub fn project_delta(core: &SpjCore, join_delta: &Delta) -> Result<Delta, EvalError> {
    let mut out = Delta::new();
    for (t, n) in join_delta.iter() {
        let projected = if core.projection.is_empty() {
            t.clone()
        } else {
            let vals: Vec<Value> = core
                .projection
                .iter()
                .map(|e| e.eval(t))
                .collect::<Result<_, _>>()?;
            Tuple::new(vals)
        };
        out.add(projected, n);
    }
    Ok(out)
}

fn passes_all(preds: &[&Expr], t: &Tuple) -> Result<bool, EvalError> {
    for p in preds {
        if !p.matches(t)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Compute the aggregate layer of `def` over an already-evaluated core
/// relation.
pub fn aggregate(def: &ViewDef, core: &Relation) -> Result<Relation, EvalError> {
    let mut groups: HashMap<Vec<Value>, Vec<(&Tuple, u64)>> = HashMap::new();
    for (t, n) in core.iter_counted() {
        let key: Vec<Value> = def
            .group_by
            .iter()
            .map(|g| g.eval(t))
            .collect::<Result<_, _>>()?;
        groups.entry(key).or_default().push((t, n));
    }

    let mut out = Relation::shared(def.schema.clone());
    for (key, rows) in groups {
        let mut vals: Vec<Value> = key;
        for agg in &def.aggregates {
            vals.push(eval_aggregate(agg.func, &agg.input, &rows)?);
        }
        out.insert(Tuple::new(vals))?;
    }
    Ok(out)
}

/// Group keys of a core relation under a view's group-by (used by the
/// incremental maintainer to find affected groups).
pub fn group_keys(def: &ViewDef, core: &Relation) -> Result<Vec<Vec<Value>>, EvalError> {
    let mut keys: Vec<Vec<Value>> = Vec::new();
    for (t, _) in core.iter_counted() {
        let key: Vec<Value> = def
            .group_by
            .iter()
            .map(|g| g.eval(t))
            .collect::<Result<_, _>>()?;
        keys.push(key);
    }
    keys.sort();
    keys.dedup();
    Ok(keys)
}

fn eval_aggregate(func: AggFunc, input: &Expr, rows: &[(&Tuple, u64)]) -> Result<Value, EvalError> {
    match func {
        AggFunc::Count => {
            let n: u64 = rows.iter().map(|(_, n)| n).sum();
            Ok(Value::Int(n as i64))
        }
        AggFunc::Sum => {
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut any_float = false;
            let mut any = false;
            for (t, n) in rows {
                let v = input.eval(t)?;
                if v.is_null() {
                    continue;
                }
                any = true;
                match v {
                    Value::Int(i) => int_sum = int_sum.wrapping_add(i.wrapping_mul(*n as i64)),
                    Value::Float(f) => {
                        any_float = true;
                        float_sum += f * (*n as f64);
                    }
                    _ => return Err(EvalError::Expr(ExprError::NotNumeric)),
                }
            }
            if !any {
                Ok(Value::Null)
            } else if any_float {
                Ok(Value::Float(float_sum + int_sum as f64))
            } else {
                Ok(Value::Int(int_sum))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for (t, _) in rows {
                let v = input.eval(t)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let keep_new = match func {
                            AggFunc::Min => v < b,
                            _ => v > b,
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        AggFunc::Avg => {
            let mut sum = 0.0;
            let mut count = 0u64;
            for (t, n) in rows {
                let v = input.eval(t)?;
                if v.is_null() {
                    continue;
                }
                let f = v.as_f64().ok_or(EvalError::Expr(ExprError::NotNumeric))?;
                sum += f * (*n as f64);
                count += n;
            }
            if count == 0 {
                Ok(Value::Null)
            } else {
                Ok(Value::Float(sum / count as f64))
            }
        }
    }
}

/// Convenience: the delta that turns `old` into `new`.
pub fn diff(old: &Relation, new: &Relation) -> Delta {
    let mut d = Delta::new();
    for (t, n) in new.iter_counted() {
        let delta = n as i64 - old.multiplicity(t) as i64;
        d.add(t.clone(), delta);
    }
    for (t, n) in old.iter_counted() {
        if !new.contains(t) {
            d.add(t.clone(), -(n as i64));
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::database::Database;
    use crate::schema::Schema;
    use crate::tuple;

    fn setup() -> (Catalog, Database) {
        let cat = Catalog::new()
            .with("R", Schema::ints(&["a", "b"]))
            .with("S", Schema::ints(&["b", "c"]))
            .with("T", Schema::ints(&["c", "d"]));
        let db = Database::from_catalog(&cat);
        (cat, db)
    }

    fn insert(db: &mut Database, rel: &str, rows: &[(i64, i64)]) {
        for &(x, y) in rows {
            db.relation_mut(&rel.into())
                .unwrap()
                .insert(tuple![x, y])
                .unwrap();
        }
    }

    #[test]
    fn paper_example1_join() {
        // V1 = R ⋈ S with R=[1,2], S=[2,3] → [1,2,3] projected (a,b,c)
        let (cat, mut db) = setup();
        insert(&mut db, "R", &[(1, 2)]);
        insert(&mut db, "S", &[(2, 3)]);
        let v1 = ViewDef::builder("V1")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .project(["R.a", "R.b", "S.c"])
            .build(&cat)
            .unwrap();
        let out = eval_view(&v1, &db).unwrap();
        assert_eq!(out.to_tuples(), vec![tuple![1, 2, 3]]);
    }

    #[test]
    fn three_way_join_chain() {
        // V2 = S ⋈ T ⋈ ... chain on c
        let (cat, mut db) = setup();
        insert(&mut db, "R", &[(1, 2), (7, 8)]);
        insert(&mut db, "S", &[(2, 3), (8, 9)]);
        insert(&mut db, "T", &[(3, 4)]);
        let v = ViewDef::builder("V")
            .from("R")
            .from("S")
            .from("T")
            .join_on("R.b", "S.b")
            .join_on("S.c", "T.c")
            .project(["R.a", "R.b", "S.c", "T.d"])
            .build(&cat)
            .unwrap();
        let out = eval_view(&v, &db).unwrap();
        assert_eq!(out.to_tuples(), vec![tuple![1, 2, 3, 4]]);
    }

    #[test]
    fn bag_multiplicities_multiply_through_join() {
        let (cat, mut db) = setup();
        insert(&mut db, "R", &[(1, 2), (1, 2)]); // two copies
        insert(&mut db, "S", &[(2, 3), (2, 3), (2, 3)]); // three copies
        let v = ViewDef::builder("V")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .project(["R.a"])
            .build(&cat)
            .unwrap();
        let out = eval_view(&v, &db).unwrap();
        assert_eq!(out.multiplicity(&tuple![1]), 6);
    }

    #[test]
    fn selection_filters() {
        let (cat, mut db) = setup();
        insert(&mut db, "R", &[(1, 2), (5, 2), (9, 2)]);
        let v = ViewDef::builder("V")
            .from("R")
            .filter(Expr::gt(Expr::named("R.a"), Expr::value(4)))
            .build(&cat)
            .unwrap();
        let out = eval_view(&v, &db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![5, 2]));
        assert!(out.contains(&tuple![9, 2]));
    }

    #[test]
    fn non_equi_join_residual() {
        let (cat, mut db) = setup();
        insert(&mut db, "R", &[(1, 10), (1, 2)]);
        insert(&mut db, "S", &[(5, 0)]);
        // theta-join R.b > S.b
        let v = ViewDef::builder("V")
            .from("R")
            .from("S")
            .filter(Expr::gt(Expr::named("R.b"), Expr::named("S.b")))
            .project(["R.b"])
            .build(&cat)
            .unwrap();
        let out = eval_view(&v, &db).unwrap();
        assert!(out.contains(&tuple![10]));
        assert!(!out.contains(&tuple![2]));
    }

    #[test]
    fn empty_join_when_no_match() {
        let (cat, mut db) = setup();
        insert(&mut db, "R", &[(1, 2)]);
        insert(&mut db, "S", &[(9, 9)]);
        let v = ViewDef::builder("V")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .build(&cat)
            .unwrap();
        assert!(eval_view(&v, &db).unwrap().is_empty());
    }

    #[test]
    fn missing_relation_errors() {
        let (cat, _) = setup();
        let db = Database::new();
        let v = ViewDef::builder("V").from("R").build(&cat).unwrap();
        assert!(matches!(
            eval_view(&v, &db),
            Err(EvalError::MissingRelation(_))
        ));
    }

    #[test]
    fn aggregate_count_sum_min_max_avg() {
        let (cat, mut db) = setup();
        insert(&mut db, "R", &[(1, 10), (1, 20), (2, 5)]);
        let v = ViewDef::builder("A")
            .from("R")
            .group_by(Expr::named("a"))
            .aggregate(AggFunc::Count, Expr::True, "n")
            .aggregate(AggFunc::Sum, Expr::named("b"), "s")
            .aggregate(AggFunc::Min, Expr::named("b"), "lo")
            .aggregate(AggFunc::Max, Expr::named("b"), "hi")
            .aggregate(AggFunc::Avg, Expr::named("b"), "mean")
            .build(&cat)
            .unwrap();
        let out = eval_view(&v, &db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![1, 2, 30, 10, 20, 15.0]));
        assert!(out.contains(&tuple![2, 1, 5, 5, 5, 5.0]));
    }

    #[test]
    fn aggregate_counts_multiplicity() {
        let (cat, mut db) = setup();
        insert(&mut db, "R", &[(1, 10), (1, 10)]);
        let v = ViewDef::builder("A")
            .from("R")
            .group_by(Expr::named("a"))
            .aggregate(AggFunc::Count, Expr::True, "n")
            .build(&cat)
            .unwrap();
        let out = eval_view(&v, &db).unwrap();
        assert!(out.contains(&tuple![1, 2]));
    }

    #[test]
    fn diff_computes_delta() {
        let schema = Schema::ints(&["a"]);
        let mut old = Relation::new(schema.clone());
        let mut new = Relation::new(schema);
        old.insert(tuple![1]).unwrap();
        old.insert_n(tuple![2], 2).unwrap();
        new.insert(tuple![2]).unwrap();
        new.insert(tuple![3]).unwrap();
        let d = diff(&old, &new);
        assert_eq!(d.net(&tuple![1]), -1);
        assert_eq!(d.net(&tuple![2]), -1);
        assert_eq!(d.net(&tuple![3]), 1);
        let mut check = old.clone();
        d.apply_to(&mut check).unwrap();
        assert_eq!(check, new);
    }

    #[test]
    fn null_join_keys_never_match() {
        let cat = Catalog::new()
            .with("R", Schema::ints(&["a", "b"]))
            .with("S", Schema::ints(&["b", "c"]));
        let mut db = Database::from_catalog(&cat);
        db.relation_mut(&"R".into())
            .unwrap()
            .insert(crate::tuple::Tuple::new(vec![Value::Int(1), Value::Null]))
            .unwrap();
        db.relation_mut(&"S".into())
            .unwrap()
            .insert(crate::tuple::Tuple::new(vec![Value::Null, Value::Int(3)]))
            .unwrap();
        let v = ViewDef::builder("V")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .build(&cat)
            .unwrap();
        assert!(eval_view(&v, &db).unwrap().is_empty());
    }

    #[test]
    fn source_count_mismatch() {
        let (cat, _) = setup();
        let v = ViewDef::builder("V")
            .from("R")
            .from("S")
            .build(&cat)
            .unwrap();
        let r = Relation::new(Schema::ints(&["a", "b"]));
        assert!(matches!(
            eval_core_with(&v.core, &[r]),
            Err(EvalError::SourceCountMismatch { .. })
        ));
    }
}
