//! Incremental view maintenance.
//!
//! The SPJ delta rule exploits multilinearity of bag joins: for a batch of
//! base changes taking each relation from `old` to `new`,
//!
//! ```text
//! V(new) − V(old) = Σ_k  πσ( r₁ⁿᵉʷ ⋈ … ⋈ r_{k−1}ⁿᵉʷ ⋈ Δr_k ⋈ r_{k+1}ᵒˡᵈ ⋈ … ⋈ r_nᵒˡᵈ )
//! ```
//!
//! summed over source *occurrences* k (so self-joins telescope correctly).
//! The signed delta `Δr_k` is evaluated as two bag evaluations (positive
//! and negative parts). This is the counting algorithm of the paper's
//! refs \[1, 3, 5\] generalized to multi-relation batches, which is exactly
//! what a strongly consistent view manager needs to fold intertwined
//! updates into a single action list.

use crate::database::StateProvider;
use crate::delta::Delta;
use crate::eval::{aggregate, diff, eval_core_with, EvalError};
use crate::relation::Relation;
use crate::schema::RelationName;
use crate::value::Value;
use crate::viewdef::{SpjCore, ViewDef};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Compute the exact view delta for an SPJ core given the base-relation
/// deltas in `changes`, with `old` providing pre-batch states and `new`
/// providing post-batch states. Relations absent from `changes` must be
/// identical in both providers.
pub fn spj_delta(
    core: &SpjCore,
    old: &dyn StateProvider,
    new: &dyn StateProvider,
    changes: &BTreeMap<RelationName, Delta>,
) -> Result<Delta, EvalError> {
    let n = core.sources.len();
    let mut out = Delta::new();

    for k in 0..n {
        let name = &core.sources[k];
        let Some(change) = changes.get(name) else {
            continue;
        };
        if change.is_empty() {
            continue;
        }

        // Assemble the per-occurrence relation vector for this term.
        // Unchanged occurrences stay borrowed from the providers; only the
        // delta occurrence is materialized.
        let mut rels: Vec<Cow<'_, Relation>> = Vec::with_capacity(n);
        for (m, src) in core.sources.iter().enumerate() {
            if m == k {
                // placeholder; replaced below by the delta parts
                let schema = old
                    .fetch(src)
                    .ok_or_else(|| EvalError::MissingRelation(src.clone()))?
                    .schema()
                    .clone();
                rels.push(Cow::Owned(Relation::new(schema)));
            } else if m < k {
                rels.push(
                    new.fetch(src)
                        .ok_or_else(|| EvalError::MissingRelation(src.clone()))?,
                );
            } else {
                rels.push(
                    old.fetch(src)
                        .ok_or_else(|| EvalError::MissingRelation(src.clone()))?,
                );
            }
        }

        let schema = rels[k].schema().clone();
        let plus = change.inserts_relation(&schema)?;
        let minus = change.deletes_relation(&schema)?;

        if !plus.is_empty() {
            rels[k] = Cow::Owned(plus);
            let contrib = eval_core_with(core, &rels)?;
            for (t, m) in contrib.iter_counted() {
                out.add(t.clone(), m as i64);
            }
        }
        if !minus.is_empty() {
            rels[k] = Cow::Owned(minus);
            let contrib = eval_core_with(core, &rels)?;
            for (t, m) in contrib.iter_counted() {
                out.add(t.clone(), -(m as i64));
            }
        }
    }

    Ok(out)
}

/// Maintenance for an aggregate view given the old materialized *core* and
/// the core delta: recomputes only the affected groups.
///
/// Returns the view-level delta (deletes of stale group rows, inserts of
/// fresh ones).
pub fn aggregate_delta(
    def: &ViewDef,
    core_old: &Relation,
    core_delta: &Delta,
) -> Result<Delta, EvalError> {
    debug_assert!(def.is_aggregate());
    if core_delta.is_empty() {
        return Ok(Delta::new());
    }

    // Affected group keys: groups of every touched core tuple.
    let mut affected: Vec<Vec<Value>> = Vec::new();
    for (t, _) in core_delta.iter() {
        let key: Vec<Value> = def
            .group_by
            .iter()
            .map(|g| g.eval(t))
            .collect::<Result<_, _>>()?;
        affected.push(key);
    }
    affected.sort();
    affected.dedup();

    let mut core_new = core_old.clone();
    core_delta.apply_to(&mut core_new)?;

    let old_groups = aggregate(def, &restrict_to_groups(def, core_old, &affected)?)?;
    let new_groups = aggregate(def, &restrict_to_groups(def, &core_new, &affected)?)?;
    Ok(diff(&old_groups, &new_groups))
}

/// Keep only core tuples whose group key is in `keys` (sorted).
fn restrict_to_groups(
    def: &ViewDef,
    core: &Relation,
    keys: &[Vec<Value>],
) -> Result<Relation, EvalError> {
    let mut out = Relation::new(core.schema().clone());
    for (t, n) in core.iter_counted() {
        let key: Vec<Value> = def
            .group_by
            .iter()
            .map(|g| g.eval(t))
            .collect::<Result<_, _>>()?;
        if keys.binary_search(&key).is_ok() {
            out.insert_n(t.clone(), n)?;
        }
    }
    Ok(out)
}

/// Full-recompute maintenance: evaluate the view at both states and diff.
/// The fallback every view manager can use, and the reference
/// implementation the property tests compare the delta rule against.
pub fn recompute_delta(
    def: &ViewDef,
    old: &dyn StateProvider,
    new: &dyn StateProvider,
) -> Result<Delta, EvalError> {
    let before = crate::eval::eval_view(def, old)?;
    let after = crate::eval::eval_view(def, new)?;
    Ok(diff(&before, &after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::database::Database;
    use crate::expr::Expr;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::viewdef::AggFunc;

    fn catalog() -> Catalog {
        Catalog::new()
            .with("R", Schema::ints(&["a", "b"]))
            .with("S", Schema::ints(&["b", "c"]))
    }

    fn db_with(cat: &Catalog, r: &[(i64, i64)], s: &[(i64, i64)]) -> Database {
        let mut db = Database::from_catalog(cat);
        for &(x, y) in r {
            db.relation_mut(&"R".into())
                .unwrap()
                .insert(tuple![x, y])
                .unwrap();
        }
        for &(x, y) in s {
            db.relation_mut(&"S".into())
                .unwrap()
                .insert(tuple![x, y])
                .unwrap();
        }
        db
    }

    fn join_view(cat: &Catalog) -> ViewDef {
        ViewDef::builder("V")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .project(["R.a", "R.b", "S.c"])
            .build(cat)
            .unwrap()
    }

    #[test]
    fn insert_delta_matches_recompute() {
        let cat = catalog();
        let old = db_with(&cat, &[(1, 2)], &[]);
        let mut new = old.clone();
        new.relation_mut(&"S".into())
            .unwrap()
            .insert(tuple![2, 3])
            .unwrap();
        let mut changes = BTreeMap::new();
        let mut d = Delta::new();
        d.insert(tuple![2, 3]);
        changes.insert("S".into(), d);

        let v = join_view(&cat);
        let inc = spj_delta(&v.core, &old, &new, &changes).unwrap();
        let re = recompute_delta(&v, &old, &new).unwrap();
        assert_eq!(inc, re);
        assert_eq!(inc.net(&tuple![1, 2, 3]), 1);
    }

    #[test]
    fn delete_delta_matches_recompute() {
        let cat = catalog();
        let old = db_with(&cat, &[(1, 2)], &[(2, 3)]);
        let mut new = old.clone();
        new.relation_mut(&"S".into()).unwrap().delete(&tuple![2, 3]);
        let mut changes = BTreeMap::new();
        let mut d = Delta::new();
        d.delete(tuple![2, 3]);
        changes.insert("S".into(), d);

        let v = join_view(&cat);
        let inc = spj_delta(&v.core, &old, &new, &changes).unwrap();
        assert_eq!(inc.net(&tuple![1, 2, 3]), -1);
        assert_eq!(inc, recompute_delta(&v, &old, &new).unwrap());
    }

    #[test]
    fn batch_delta_over_both_relations() {
        // Simultaneous changes to R and S — the intertwined-update case a
        // strongly consistent manager folds into one AL.
        let cat = catalog();
        let old = db_with(&cat, &[(1, 2)], &[(2, 3)]);
        let mut new = old.clone();
        new.relation_mut(&"R".into())
            .unwrap()
            .insert(tuple![9, 2])
            .unwrap();
        new.relation_mut(&"S".into()).unwrap().delete(&tuple![2, 3]);
        new.relation_mut(&"S".into())
            .unwrap()
            .insert(tuple![2, 7])
            .unwrap();

        let mut changes = BTreeMap::new();
        let mut dr = Delta::new();
        dr.insert(tuple![9, 2]);
        changes.insert("R".into(), dr);
        let mut ds = Delta::new();
        ds.delete(tuple![2, 3]);
        ds.insert(tuple![2, 7]);
        changes.insert("S".into(), ds);

        let v = join_view(&cat);
        let inc = spj_delta(&v.core, &old, &new, &changes).unwrap();
        assert_eq!(inc, recompute_delta(&v, &old, &new).unwrap());
    }

    #[test]
    fn self_join_telescoping() {
        let cat = catalog();
        let old = db_with(&cat, &[(1, 2), (2, 5)], &[]);
        let mut new = old.clone();
        new.relation_mut(&"R".into())
            .unwrap()
            .insert(tuple![5, 1])
            .unwrap();
        let mut changes = BTreeMap::new();
        let mut d = Delta::new();
        d.insert(tuple![5, 1]);
        changes.insert("R".into(), d);

        // V = R ⋈_{R.b = R#2.a} R
        let v = ViewDef::builder("V")
            .from("R")
            .from("R")
            .join_on("R.b", "R#2.a")
            .build(&cat)
            .unwrap();
        let inc = spj_delta(&v.core, &old, &new, &changes).unwrap();
        assert_eq!(inc, recompute_delta(&v, &old, &new).unwrap());
        // new tuple joins both ways: [2,5]⋈[5,1] and [5,1]⋈[1,2]
        assert_eq!(inc.net(&tuple![2, 5, 5, 1]), 1);
        assert_eq!(inc.net(&tuple![5, 1, 1, 2]), 1);
    }

    #[test]
    fn duplicate_preservation_under_delete() {
        // Two R derivations for the same projected tuple; deleting one base
        // tuple must decrement, not eliminate.
        let cat = catalog();
        let mut old = db_with(&cat, &[], &[(2, 3)]);
        old.relation_mut(&"R".into())
            .unwrap()
            .insert_n(tuple![1, 2], 2)
            .unwrap();
        let mut new = old.clone();
        new.relation_mut(&"R".into()).unwrap().delete(&tuple![1, 2]);
        let mut changes = BTreeMap::new();
        let mut d = Delta::new();
        d.delete(tuple![1, 2]);
        changes.insert("R".into(), d);

        let v = join_view(&cat);
        let inc = spj_delta(&v.core, &old, &new, &changes).unwrap();
        assert_eq!(inc.net(&tuple![1, 2, 3]), -1);
        let mut mat = crate::eval::eval_view(&v, &old).unwrap();
        inc.apply_to(&mut mat).unwrap();
        assert_eq!(mat.multiplicity(&tuple![1, 2, 3]), 1);
    }

    #[test]
    fn no_change_empty_delta() {
        let cat = catalog();
        let db = db_with(&cat, &[(1, 2)], &[(2, 3)]);
        let v = join_view(&cat);
        let inc = spj_delta(&v.core, &db, &db, &BTreeMap::new()).unwrap();
        assert!(inc.is_empty());
    }

    #[test]
    fn aggregate_delta_recomputes_affected_groups_only() {
        let cat = catalog();
        let v = ViewDef::builder("A")
            .from("R")
            .group_by(Expr::named("a"))
            .aggregate(AggFunc::Sum, Expr::named("b"), "s")
            .aggregate(AggFunc::Count, Expr::True, "n")
            .build(&cat)
            .unwrap();
        let old_db = db_with(&cat, &[(1, 10), (1, 20), (2, 5)], &[]);
        let core_old = crate::eval::eval_core(&v.core, &old_db).unwrap();

        let mut cd = Delta::new();
        cd.insert(tuple![1, 30]); // affects group 1 only
        let vd = aggregate_delta(&v, &core_old, &cd).unwrap();
        assert_eq!(vd.net(&tuple![1, 30, 2]), -1, "old group row removed");
        assert_eq!(vd.net(&tuple![1, 60, 3]), 1, "new group row added");
        assert_eq!(vd.net(&tuple![2, 5, 1]), 0, "untouched group untouched");
    }

    #[test]
    fn aggregate_delta_group_vanishes() {
        let cat = catalog();
        let v = ViewDef::builder("A")
            .from("R")
            .group_by(Expr::named("a"))
            .aggregate(AggFunc::Count, Expr::True, "n")
            .build(&cat)
            .unwrap();
        let old_db = db_with(&cat, &[(1, 10)], &[]);
        let core_old = crate::eval::eval_core(&v.core, &old_db).unwrap();
        let mut cd = Delta::new();
        cd.delete(tuple![1, 10]);
        let vd = aggregate_delta(&v, &core_old, &cd).unwrap();
        assert_eq!(vd.net(&tuple![1, 1]), -1);
        assert_eq!(vd.distinct_len(), 1, "no replacement row for empty group");
    }

    #[test]
    fn min_max_delete_recomputes_correctly() {
        let cat = catalog();
        let v = ViewDef::builder("A")
            .from("R")
            .group_by(Expr::named("a"))
            .aggregate(AggFunc::Max, Expr::named("b"), "hi")
            .build(&cat)
            .unwrap();
        let old_db = db_with(&cat, &[(1, 10), (1, 20)], &[]);
        let core_old = crate::eval::eval_core(&v.core, &old_db).unwrap();
        // delete the current max → must fall back to 10, which pure
        // delta-application cannot know without recomputing the group
        let mut cd = Delta::new();
        cd.delete(tuple![1, 20]);
        let vd = aggregate_delta(&v, &core_old, &cd).unwrap();
        assert_eq!(vd.net(&tuple![1, 20]), -1);
        assert_eq!(vd.net(&tuple![1, 10]), 1);
    }
}
