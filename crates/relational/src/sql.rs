//! A small SQL front-end for view definitions.
//!
//! The WHIPS prototype defined warehouse views in a SQL-ish DDL; this
//! module provides the same convenience: parse a `SELECT … FROM … [WHERE
//! …] [GROUP BY …]` statement into a [`ViewDef`] against a [`Catalog`].
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! select    := SELECT items FROM tables [WHERE pred] [GROUP BY refs]
//! items     := '*' | item (',' item)*
//! item      := expr [AS ident] | aggfn '(' (expr | '*') ')' [AS ident]
//! aggfn     := COUNT | SUM | MIN | MAX | AVG
//! tables    := ident (',' ident)*          -- duplicates = self-join
//! pred      := or ;  or := and (OR and)* ; and := not (AND not)*
//! not       := NOT not | primary
//! primary   := expr cmp expr | expr IS [NOT] NULL | '(' pred ')'
//! cmp       := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//! expr      := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)*
//! factor    := number | string | NULL | ref | '(' expr ')' | '-' factor
//! ref       := ident ['.' ident]           -- `R.a` or bare `a`
//! ```
//!
//! Bare column names are resolved against the qualified join schema when
//! unambiguous (`a` → `R.a` if exactly one source has an `a`).

use crate::catalog::Catalog;
use crate::expr::{ArithOp, CmpOp, Expr};
use crate::schema::SchemaError;
use crate::value::Value;
use crate::viewdef::{AggFunc, ViewDef, ViewName};
use std::fmt;

/// Errors raised by the SQL front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error at byte offset.
    Lex(usize, String),
    /// Unexpected token.
    Parse(String),
    /// Name resolution / schema error from the builder.
    Schema(SchemaError),
    /// Ambiguous bare column.
    Ambiguous(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(pos, what) => write!(f, "lex error at byte {pos}: {what}"),
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::Schema(e) => write!(f, "schema error: {e}"),
            SqlError::Ambiguous(n) => write!(f, "ambiguous column `{n}`"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<SchemaError> for SqlError {
    fn from(e: SchemaError) -> Self {
        SqlError::Schema(e)
    }
}

/// Parse one SELECT statement into a view definition named `name`.
pub fn parse_view(
    name: impl Into<ViewName>,
    sql: &str,
    catalog: &Catalog,
) -> Result<ViewDef, SqlError> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        catalog,
        sources: Vec::new(),
    };
    p.parse_select(name.into())
}

// ---------------------------------------------------------------- lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(&'static str), // ( ) , . * + - / = != <> < <= > >=
}

fn keyword(s: &str) -> String {
    s.to_ascii_uppercase()
}

fn lex(input: &str) -> Result<Vec<Tok>, SqlError> {
    let b = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '=' => {
                out.push(Tok::Symbol(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    _ => "=",
                }));
                i += 1;
            }
            '!' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Tok::Symbol("!="));
                    i += 2;
                } else {
                    return Err(SqlError::Lex(i, "expected `!=`".into()));
                }
            }
            '<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Tok::Symbol("<="));
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Tok::Symbol("!="));
                    i += 2;
                } else {
                    out.push(Tok::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Tok::Symbol(">="));
                    i += 2;
                } else {
                    out.push(Tok::Symbol(">"));
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(SqlError::Lex(i, "unterminated string".into()));
                }
                out.push(Tok::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < b.len()
                    && b[i] == b'.'
                    && i + 1 < b.len()
                    && (b[i + 1] as char).is_ascii_digit()
                {
                    i += 1;
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let f: f64 = input[start..i]
                        .parse()
                        .map_err(|_| SqlError::Lex(start, "bad float".into()))?;
                    out.push(Tok::Float(f));
                } else {
                    let n: i64 = input[start..i]
                        .parse()
                        .map_err(|_| SqlError::Lex(start, "bad integer".into()))?;
                    out.push(Tok::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() {
                    let ch = b[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' || ch == '#' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(input[start..i].to_owned()));
            }
            other => return Err(SqlError::Lex(i, format!("unexpected `{other}`"))),
        }
    }
    Ok(out)
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    catalog: &'a Catalog,
    /// FROM-list relation names in order (with duplicates for self-joins).
    sources: Vec<String>,
}

/// One SELECT-list item before resolution.
enum SelectItem {
    Star,
    Expr {
        expr: Expr,
        alias: Option<String>,
    },
    Agg {
        func: AggFunc,
        input: Option<Expr>,
        alias: Option<String>,
    },
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Symbol(x)) if *x == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(x)) if keyword(x) == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<(), SqlError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{s}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn parse_select(&mut self, name: ViewName) -> Result<ViewDef, SqlError> {
        self.expect_keyword("SELECT")?;
        // select list (deferred resolution until FROM is known)
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        loop {
            let rel = self.ident()?;
            self.sources.push(rel);
            if !self.eat_symbol(",") {
                break;
            }
        }
        let predicate = if self.eat_keyword("WHERE") {
            Some(self.parse_or()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_ref()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        if self.pos != self.tokens.len() {
            return Err(SqlError::Parse(format!(
                "trailing input at token {:?}",
                self.peek()
            )));
        }

        // Assemble via the builder.
        let mut b = ViewDef::builder(name.as_str());
        for s in &self.sources {
            b = b.from(s.as_str());
        }
        if let Some(p) = predicate {
            b = b.filter(self.qualify(p)?);
        }
        let has_agg = items.iter().any(|i| matches!(i, SelectItem::Agg { .. }));
        let mut agg_group_exprs: Vec<Expr> = Vec::new();
        for item in items {
            match item {
                SelectItem::Star => {
                    if has_agg {
                        return Err(SqlError::Parse("`*` cannot mix with aggregates".into()));
                    }
                    // identity projection: nothing to add (builder default)
                }
                SelectItem::Expr { expr, alias } => {
                    let q = self.qualify(expr)?;
                    if has_agg {
                        // non-aggregate item in an aggregate query must be
                        // a grouped expression; remember it as group-by
                        // output order is builder-managed
                        agg_group_exprs.push(q.clone());
                        let name = alias.unwrap_or_else(|| display_name(&q));
                        let _ = name; // group columns take their own names
                    } else {
                        let name = alias.unwrap_or_else(|| display_name(&q));
                        b = b.project_expr(q, name);
                    }
                }
                SelectItem::Agg { func, input, alias } => {
                    let input = match input {
                        Some(e) => self.normalize_output(e)?,
                        None => Expr::True, // COUNT(*)
                    };
                    let name = alias.unwrap_or_else(|| func.to_string());
                    b = b.aggregate(func, input, name);
                }
            }
        }
        for g in group_by {
            b = b.group_by(self.normalize_output(g)?);
        }
        b.build(self.catalog).map_err(SqlError::from)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Star);
        }
        // aggregate function?
        if let Some(Tok::Ident(id)) = self.peek() {
            let func = match keyword(id).as_str() {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                "AVG" => Some(AggFunc::Avg),
                _ => None,
            };
            if let Some(func) = func {
                // lookahead for '('
                if matches!(self.tokens.get(self.pos + 1), Some(Tok::Symbol("("))) {
                    self.pos += 2; // ident + (
                    let input = if self.eat_symbol("*") {
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    self.expect_symbol(")")?;
                    let alias = self.parse_alias()?;
                    return Ok(SelectItem::Agg { func, input, alias });
                }
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_keyword("AS") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    // predicates -----------------------------------------------------

    fn parse_or(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.parse_and()?;
        while self.eat_keyword("OR") {
            let rhs = self.parse_and()?;
            e = Expr::or(e, rhs);
        }
        Ok(e)
    }

    fn parse_and(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.parse_not()?;
        while self.eat_keyword("AND") {
            let rhs = self.parse_not()?;
            e = Expr::and(e, rhs);
        }
        Ok(e)
    }

    fn parse_not(&mut self) -> Result<Expr, SqlError> {
        if self.eat_keyword("NOT") {
            Ok(Expr::not(self.parse_not()?))
        } else {
            self.parse_primary_pred()
        }
    }

    fn parse_primary_pred(&mut self) -> Result<Expr, SqlError> {
        // Parenthesized predicate vs parenthesized arithmetic — parse an
        // expression first; if followed by a comparison, it's arithmetic.
        let save = self.pos;
        if self.eat_symbol("(") {
            // try predicate
            if let Ok(inner) = self.parse_or() {
                if self.eat_symbol(")") {
                    // If this parses as a comparison already (or the next
                    // token is a boolean connective / end), accept it.
                    if !self.next_is_cmp() {
                        return Ok(inner);
                    }
                }
            }
            self.pos = save; // fall through to expression route
        }
        let lhs = self.parse_expr()?;
        if self.eat_keyword("IS") {
            let negate = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            let isnull = Expr::IsNull(Box::new(lhs));
            return Ok(if negate { Expr::not(isnull) } else { isnull });
        }
        let op = match self.next() {
            Some(Tok::Symbol("=")) => CmpOp::Eq,
            Some(Tok::Symbol("!=")) => CmpOp::Ne,
            Some(Tok::Symbol("<")) => CmpOp::Lt,
            Some(Tok::Symbol("<=")) => CmpOp::Le,
            Some(Tok::Symbol(">")) => CmpOp::Gt,
            Some(Tok::Symbol(">=")) => CmpOp::Ge,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let rhs = self.parse_expr()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn next_is_cmp(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Symbol("=" | "!=" | "<" | "<=" | ">" | ">="))
        )
    }

    // arithmetic expressions ------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.parse_term()?;
        loop {
            if self.eat_symbol("+") {
                e = Expr::Arith(ArithOp::Add, Box::new(e), Box::new(self.parse_term()?));
            } else if self.eat_symbol("-") {
                e = Expr::Arith(ArithOp::Sub, Box::new(e), Box::new(self.parse_term()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, SqlError> {
        let mut e = self.parse_factor()?;
        loop {
            if self.eat_symbol("*") {
                e = Expr::Arith(ArithOp::Mul, Box::new(e), Box::new(self.parse_factor()?));
            } else if self.eat_symbol("/") {
                e = Expr::Arith(ArithOp::Div, Box::new(e), Box::new(self.parse_factor()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_factor(&mut self) -> Result<Expr, SqlError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Const(Value::Int(n)))
            }
            Some(Tok::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Const(Value::Float(f)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Const(Value::Str(s)))
            }
            Some(Tok::Symbol("-")) => {
                self.pos += 1;
                let inner = self.parse_factor()?;
                Ok(Expr::Arith(
                    ArithOp::Sub,
                    Box::new(Expr::Const(Value::Int(0))),
                    Box::new(inner),
                ))
            }
            Some(Tok::Symbol("(")) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Tok::Ident(id)) if keyword(&id) == "NULL" => {
                self.pos += 1;
                Ok(Expr::Const(Value::Null))
            }
            Some(Tok::Ident(_)) => self.parse_ref(),
            other => Err(SqlError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn parse_ref(&mut self) -> Result<Expr, SqlError> {
        let first = self.ident()?;
        if self.eat_symbol(".") {
            let attr = self.ident()?;
            Ok(Expr::named(format!("{first}.{attr}")))
        } else {
            Ok(Expr::named(first))
        }
    }

    /// Qualify bare column references against the FROM list: `a` becomes
    /// `R.a` when exactly one source relation has an attribute `a`.
    fn qualify(&self, e: Expr) -> Result<Expr, SqlError> {
        Ok(match e {
            Expr::Named(n) if !n.contains('.') => {
                let mut owner: Option<String> = None;
                let mut seen = std::collections::BTreeSet::new();
                for src in &self.sources {
                    if !seen.insert(src.clone()) {
                        continue; // self-join: second occurrence ambiguous anyway
                    }
                    if let Some(schema) = self.catalog.schema(&src.as_str().into()) {
                        if schema.position_of(&n).is_some() {
                            if owner.is_some() {
                                return Err(SqlError::Ambiguous(n));
                            }
                            owner = Some(src.clone());
                        }
                    }
                }
                match owner {
                    Some(src) => Expr::named(format!("{src}.{n}")),
                    None => Expr::Named(n), // let the builder report it
                }
            }
            Expr::Named(n) => Expr::Named(n),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(op, Box::new(self.qualify(*a)?), Box::new(self.qualify(*b)?))
            }
            Expr::Arith(op, a, b) => {
                Expr::Arith(op, Box::new(self.qualify(*a)?), Box::new(self.qualify(*b)?))
            }
            Expr::And(a, b) => Expr::and(self.qualify(*a)?, self.qualify(*b)?),
            Expr::Or(a, b) => Expr::or(self.qualify(*a)?, self.qualify(*b)?),
            Expr::Not(a) => Expr::not(self.qualify(*a)?),
            Expr::IsNull(a) => Expr::IsNull(Box::new(self.qualify(*a)?)),
            other => other,
        })
    }
}

impl Parser<'_> {
    /// Normalize a reference for the *core output* schema (where group-by
    /// and aggregate inputs resolve): qualifiers are stripped when the
    /// bare attribute is unique across the FROM list, mirroring the
    /// builder's default output naming.
    fn normalize_output(&self, e: Expr) -> Result<Expr, SqlError> {
        Ok(match e {
            Expr::Named(n) => {
                let bare = match n.rsplit_once('.') {
                    Some((_, a)) => a.to_owned(),
                    None => n.clone(),
                };
                let mut owners = 0usize;
                let mut seen = std::collections::BTreeSet::new();
                for src in &self.sources {
                    if !seen.insert(src.clone()) {
                        owners += 1; // self-join repeats keep names qualified
                        continue;
                    }
                    if let Some(schema) = self.catalog.schema(&src.as_str().into()) {
                        if schema.position_of(&bare).is_some() {
                            owners += 1;
                        }
                    }
                }
                if owners <= 1 {
                    Expr::Named(bare)
                } else {
                    // ambiguous: keep (or synthesize) the qualified form
                    self.qualify(Expr::Named(n))?
                }
            }
            Expr::Cmp(op, a, b) => Expr::Cmp(
                op,
                Box::new(self.normalize_output(*a)?),
                Box::new(self.normalize_output(*b)?),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                op,
                Box::new(self.normalize_output(*a)?),
                Box::new(self.normalize_output(*b)?),
            ),
            Expr::And(a, b) => Expr::and(self.normalize_output(*a)?, self.normalize_output(*b)?),
            Expr::Or(a, b) => Expr::or(self.normalize_output(*a)?, self.normalize_output(*b)?),
            Expr::Not(a) => Expr::not(self.normalize_output(*a)?),
            Expr::IsNull(a) => Expr::IsNull(Box::new(self.normalize_output(*a)?)),
            other => other,
        })
    }
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Named(n) => match n.rsplit_once('.') {
            Some((_, a)) => a.to_owned(),
            None => n.clone(),
        },
        other => format!("{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::eval::eval_view;
    use crate::schema::Schema;
    use crate::tuple;

    fn catalog() -> Catalog {
        Catalog::new()
            .with("R", Schema::ints(&["a", "b"]))
            .with("S", Schema::ints(&["b", "c"]))
    }

    fn db() -> Database {
        let mut db = Database::from_catalog(&catalog());
        for (a, b) in [(1i64, 2i64), (5, 2), (9, 7)] {
            db.relation_mut(&"R".into())
                .unwrap()
                .insert(tuple![a, b])
                .unwrap();
        }
        for (b, c) in [(2i64, 3i64), (7, 8)] {
            db.relation_mut(&"S".into())
                .unwrap()
                .insert(tuple![b, c])
                .unwrap();
        }
        db
    }

    #[test]
    fn select_star_single_table() {
        let v = parse_view("V", "SELECT * FROM R", &catalog()).unwrap();
        let out = eval_view(&v, &db()).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn join_with_projection_and_filter() {
        let v = parse_view(
            "V",
            "SELECT R.a, S.c FROM R, S WHERE R.b = S.b AND R.a > 2",
            &catalog(),
        )
        .unwrap();
        let out = eval_view(&v, &db()).unwrap();
        // R[5,2]⋈S[2,3] and R[9,7]⋈S[7,8]; R[1,2] filtered by a>2
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple![5, 3]));
        assert!(out.contains(&tuple![9, 8]));
    }

    #[test]
    fn bare_columns_qualified_when_unambiguous() {
        let v = parse_view("V", "SELECT a, c FROM R, S WHERE R.b = S.b", &catalog()).unwrap();
        let names: Vec<_> = v
            .schema
            .attributes()
            .iter()
            .map(|x| x.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "c"]);
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let err = parse_view("V", "SELECT b FROM R, S", &catalog()).unwrap_err();
        assert!(matches!(err, SqlError::Ambiguous(_)), "{err}");
    }

    #[test]
    fn aggregates_with_group_by() {
        let v = parse_view(
            "A",
            "SELECT b, COUNT(*) AS n, SUM(a) AS total FROM R GROUP BY b",
            &catalog(),
        )
        .unwrap();
        let out = eval_view(&v, &db()).unwrap();
        assert!(out.contains(&tuple![2, 2, 6]), "{out}");
        assert!(out.contains(&tuple![7, 1, 9]), "{out}");
    }

    #[test]
    fn arithmetic_aliases_and_literals() {
        let v = parse_view(
            "V",
            "SELECT a * 2 + 1 AS odd FROM R WHERE a <= 5",
            &catalog(),
        )
        .unwrap();
        let out = eval_view(&v, &db()).unwrap();
        assert!(out.contains(&tuple![3]));
        assert!(out.contains(&tuple![11]));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn or_not_parens_is_null() {
        let v = parse_view(
            "V",
            "SELECT a FROM R WHERE (a = 1 OR a = 9) AND NOT a IS NULL",
            &catalog(),
        )
        .unwrap();
        let out = eval_view(&v, &db()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn self_join_via_duplicate_from() {
        let v = parse_view("V", "SELECT R.a FROM R, R WHERE R.b = R#2.a", &catalog()).unwrap();
        // R[?,b]⋈R[a=b,?]: pairs where first.b == second.a
        let out = eval_view(&v, &db()).unwrap();
        // b values {2,2,7}; a values {1,5,9}: no matches (2,7 ∉ {1,5,9})
        assert!(out.is_empty());
    }

    #[test]
    fn string_and_null_literals() {
        let cat = Catalog::new().with(
            "P",
            Schema::new(vec![
                crate::schema::Attribute::str("name"),
                crate::schema::Attribute::int("age"),
            ])
            .unwrap(),
        );
        let v = parse_view(
            "V",
            "SELECT name FROM P WHERE name = 'alice' AND age IS NOT NULL",
            &cat,
        )
        .unwrap();
        assert_eq!(v.schema.arity(), 1);
    }

    #[test]
    fn errors_are_reported() {
        let cat = catalog();
        assert!(matches!(
            parse_view("V", "SELECT FROM R", &cat),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            parse_view("V", "SELECT * FROM", &cat),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            parse_view("V", "SELECT * FROM R WHERE a ~ 1", &cat),
            Err(SqlError::Lex(..))
        ));
        assert!(matches!(
            parse_view("V", "SELECT * FROM Unknown", &cat),
            Err(SqlError::Schema(_))
        ));
        assert!(matches!(
            parse_view("V", "SELECT * FROM R extra", &cat),
            Err(SqlError::Parse(_))
        ));
    }

    #[test]
    fn sql_view_equals_builder_view() {
        let cat = catalog();
        let sql = parse_view("V1", "SELECT R.a, R.b, S.c FROM R, S WHERE R.b = S.b", &cat).unwrap();
        let built = ViewDef::builder("V1")
            .from("R")
            .from("S")
            .join_on("R.b", "S.b")
            .project(["R.a", "R.b", "S.c"])
            .build(&cat)
            .unwrap();
        let d = db();
        assert_eq!(eval_view(&sql, &d).unwrap(), eval_view(&built, &d).unwrap());
    }
}
