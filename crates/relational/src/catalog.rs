//! The catalog: base-relation schemas known system-wide.

use crate::schema::{RelationName, Schema, SchemaError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Maps base-relation names to their schemas. Shared (immutably) by
/// sources, view managers and the integrator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    relations: BTreeMap<RelationName, Schema>,
}

impl Catalog {
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a relation schema. Returns an error on redefinition with a
    /// different schema (idempotent for identical redefinitions).
    pub fn define(
        &mut self,
        name: impl Into<RelationName>,
        schema: Schema,
    ) -> Result<(), SchemaError> {
        let name = name.into();
        if let Some(existing) = self.relations.get(&name) {
            if *existing != schema {
                return Err(SchemaError::DuplicateAttribute(format!(
                    "relation `{name}` redefined with different schema"
                )));
            }
            return Ok(());
        }
        self.relations.insert(name, schema);
        Ok(())
    }

    /// Builder-style definition for test/bench setup.
    pub fn with(mut self, name: impl Into<RelationName>, schema: Schema) -> Self {
        self.define(name, schema).expect("catalog redefinition");
        self
    }

    pub fn schema(&self, name: &RelationName) -> Option<&Schema> {
        self.relations.get(name)
    }

    pub fn require(&self, name: &RelationName) -> Result<&Schema, SchemaError> {
        self.schema(name)
            .ok_or_else(|| SchemaError::UnknownAttribute(format!("relation `{name}`")))
    }

    pub fn names(&self) -> impl Iterator<Item = &RelationName> {
        self.relations.keys()
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut c = Catalog::new();
        c.define("R", Schema::ints(&["a", "b"])).unwrap();
        assert_eq!(c.schema(&"R".into()).unwrap().arity(), 2);
        assert!(c.schema(&"S".into()).is_none());
        assert!(c.require(&"S".into()).is_err());
    }

    #[test]
    fn idempotent_redefinition_ok_conflict_err() {
        let mut c = Catalog::new();
        c.define("R", Schema::ints(&["a"])).unwrap();
        assert!(c.define("R", Schema::ints(&["a"])).is_ok());
        assert!(c.define("R", Schema::ints(&["a", "b"])).is_err());
    }
}
