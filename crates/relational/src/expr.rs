//! Scalar expressions for selection predicates and projections.
//!
//! Expressions reference attributes either by resolved position (`Col`) or
//! by qualified name (`Named`), which is resolved against a schema before
//! evaluation. Comparison follows SQL three-valued logic collapsed to
//! two-valued at the top: a predicate keeps a tuple only when it evaluates
//! to `true` (unknown → filtered out).

use crate::schema::{Schema, SchemaError};
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    Schema(SchemaError),
    /// Arithmetic applied to non-numeric operands.
    NotNumeric,
    DivisionByZero,
    /// `Named` column used without prior resolution.
    Unresolved(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Schema(e) => write!(f, "schema error: {e}"),
            ExprError::NotNumeric => write!(f, "arithmetic on non-numeric operands"),
            ExprError::DivisionByZero => write!(f, "division by zero"),
            ExprError::Unresolved(n) => write!(f, "unresolved column `{n}`"),
        }
    }
}

impl std::error::Error for ExprError {}

impl From<SchemaError> for ExprError {
    fn from(e: SchemaError) -> Self {
        ExprError::Schema(e)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Column by resolved position within the (joined) input schema.
    Col(usize),
    /// Column by name; must be resolved against a schema before evaluation.
    Named(String),
    /// Literal constant.
    Const(Value),
    /// Comparison, SQL three-valued (null operand → unknown → false at top).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic over numerics (int op int → int except Div → float).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    IsNull(Box<Expr>),
    /// Always true (empty predicate).
    True,
}

impl Expr {
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    pub fn named(n: impl Into<String>) -> Expr {
        Expr::Named(n.into())
    }

    pub fn value(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(a), Box::new(b))
    }

    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(a), Box::new(b))
    }

    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(a), Box::new(b))
    }

    pub fn le(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(a), Box::new(b))
    }

    pub fn gt(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(a), Box::new(b))
    }

    pub fn ge(a: Expr, b: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(a), Box::new(b))
    }

    pub fn and(a: Expr, b: Expr) -> Expr {
        Expr::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: Expr, b: Expr) -> Expr {
        Expr::Or(Box::new(a), Box::new(b))
    }

    #[allow(clippy::should_implement_trait)] // builder-style constructor, not an operator
    pub fn not(a: Expr) -> Expr {
        Expr::Not(Box::new(a))
    }

    /// Conjunction of many predicates (`True` when empty).
    pub fn all<I: IntoIterator<Item = Expr>>(preds: I) -> Expr {
        preds.into_iter().reduce(Expr::and).unwrap_or(Expr::True)
    }

    /// Resolve all `Named` references to `Col` positions against `schema`.
    pub fn resolve(&self, schema: &Schema) -> Result<Expr, SchemaError> {
        Ok(match self {
            Expr::Named(n) => Expr::Col(schema.resolve(n)?),
            Expr::Col(i) => {
                if *i >= schema.arity() {
                    return Err(SchemaError::PositionOutOfRange {
                        position: *i,
                        arity: schema.arity(),
                    });
                }
                Expr::Col(*i)
            }
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.resolve(schema)?),
                Box::new(b.resolve(schema)?),
            ),
            Expr::And(a, b) => Expr::and(a.resolve(schema)?, b.resolve(schema)?),
            Expr::Or(a, b) => Expr::or(a.resolve(schema)?, b.resolve(schema)?),
            Expr::Not(a) => Expr::not(a.resolve(schema)?),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.resolve(schema)?)),
            Expr::True => Expr::True,
        })
    }

    /// Evaluate against a tuple. `Named` must be resolved first.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, ExprError> {
        Ok(match self {
            Expr::Col(i) => tuple
                .try_get(*i)
                .ok_or(ExprError::Schema(SchemaError::PositionOutOfRange {
                    position: *i,
                    arity: tuple.arity(),
                }))?
                .clone(),
            Expr::Named(n) => return Err(ExprError::Unresolved(n.clone())),
            Expr::Const(v) => v.clone(),
            Expr::Cmp(op, a, b) => {
                let va = a.eval(tuple)?;
                let vb = b.eval(tuple)?;
                match va.sql_cmp(&vb) {
                    Some(ord) => Value::Bool(op.test(ord)),
                    None => Value::Null, // unknown
                }
            }
            Expr::Arith(op, a, b) => {
                let va = a.eval(tuple)?;
                let vb = b.eval(tuple)?;
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                match (va.as_i64(), vb.as_i64(), op) {
                    (Some(x), Some(y), ArithOp::Add) => Value::Int(x.wrapping_add(y)),
                    (Some(x), Some(y), ArithOp::Sub) => Value::Int(x.wrapping_sub(y)),
                    (Some(x), Some(y), ArithOp::Mul) => Value::Int(x.wrapping_mul(y)),
                    _ => {
                        let x = va.as_f64().ok_or(ExprError::NotNumeric)?;
                        let y = vb.as_f64().ok_or(ExprError::NotNumeric)?;
                        match op {
                            ArithOp::Add => Value::Float(x + y),
                            ArithOp::Sub => Value::Float(x - y),
                            ArithOp::Mul => Value::Float(x * y),
                            ArithOp::Div => {
                                if y == 0.0 {
                                    return Err(ExprError::DivisionByZero);
                                }
                                Value::Float(x / y)
                            }
                        }
                    }
                }
            }
            Expr::And(a, b) => {
                // three-valued AND
                let va = a.eval(tuple)?;
                let vb = b.eval(tuple)?;
                match (va.as_bool(), vb.as_bool()) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                }
            }
            Expr::Or(a, b) => {
                let va = a.eval(tuple)?;
                let vb = b.eval(tuple)?;
                match (va.as_bool(), vb.as_bool()) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                }
            }
            Expr::Not(a) => match a.eval(tuple)?.as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            Expr::IsNull(a) => Value::Bool(a.eval(tuple)?.is_null()),
            Expr::True => Value::Bool(true),
        })
    }

    /// Evaluate as a filter: `true` keeps the tuple; `false`/unknown drops it.
    pub fn matches(&self, tuple: &Tuple) -> Result<bool, ExprError> {
        Ok(self.eval(tuple)?.as_bool().unwrap_or(false))
    }

    /// Column positions this expression reads (for irrelevance analysis).
    pub fn columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.collect_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Named(_) | Expr::Const(_) | Expr::True => {}
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) => a.collect_columns(out),
        }
    }

    /// Rewrite column positions through `map` (position in the old schema →
    /// position in the new schema). Used to push predicates onto single
    /// relations during irrelevance analysis and delta evaluation.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Col(i) => Expr::Col(map(*i)?),
            Expr::Named(n) => Expr::Named(n.clone()),
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::Arith(op, a, b) => Expr::Arith(
                *op,
                Box::new(a.remap_columns(map)?),
                Box::new(b.remap_columns(map)?),
            ),
            Expr::And(a, b) => Expr::and(a.remap_columns(map)?, b.remap_columns(map)?),
            Expr::Or(a, b) => Expr::or(a.remap_columns(map)?, b.remap_columns(map)?),
            Expr::Not(a) => Expr::not(a.remap_columns(map)?),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.remap_columns(map)?)),
            Expr::True => Expr::True,
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Named(n) => write!(f, "{n}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::IsNull(a) => write!(f, "({a} IS NULL)"),
            Expr::True => write!(f, "TRUE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn comparison_and_logic() {
        let t = tuple![1, 2];
        let p = Expr::and(
            Expr::lt(Expr::col(0), Expr::col(1)),
            Expr::eq(Expr::col(0), Expr::value(1)),
        );
        assert!(p.matches(&t).unwrap());
        assert!(!Expr::gt(Expr::col(0), Expr::col(1)).matches(&t).unwrap());
    }

    #[test]
    fn null_comparisons_filter_out() {
        let t = crate::tuple::Tuple::new(vec![Value::Null, Value::Int(1)]);
        let p = Expr::eq(Expr::col(0), Expr::col(1));
        assert!(!p.matches(&t).unwrap());
        assert!(Expr::IsNull(Box::new(Expr::col(0))).matches(&t).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let t = crate::tuple::Tuple::new(vec![Value::Null, Value::Int(1)]);
        let unknown = Expr::eq(Expr::col(0), Expr::value(0));
        // unknown AND false = false; unknown OR true = true
        let f = Expr::and(unknown.clone(), Expr::eq(Expr::col(1), Expr::value(2)));
        assert_eq!(f.eval(&t).unwrap(), Value::Bool(false));
        let tr = Expr::or(unknown, Expr::eq(Expr::col(1), Expr::value(1)));
        assert_eq!(tr.eval(&t).unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic_int_and_float() {
        let t = tuple![6, 4];
        let add = Expr::Arith(ArithOp::Add, Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(add.eval(&t).unwrap(), Value::Int(10));
        let div = Expr::Arith(ArithOp::Div, Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(div.eval(&t).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let t = tuple![1, 0];
        let div = Expr::Arith(ArithOp::Div, Box::new(Expr::col(0)), Box::new(Expr::col(1)));
        assert_eq!(div.eval(&t), Err(ExprError::DivisionByZero));
    }

    #[test]
    fn resolve_named_columns() {
        let schema = Schema::ints(&["a", "b"]);
        let p = Expr::eq(Expr::named("b"), Expr::value(2));
        let r = p.resolve(&schema).unwrap();
        assert!(r.matches(&tuple![1, 2]).unwrap());
        assert!(Expr::named("z").resolve(&schema).is_err());
    }

    #[test]
    fn unresolved_named_errors_at_eval() {
        assert!(matches!(
            Expr::named("x").eval(&tuple![1]),
            Err(ExprError::Unresolved(_))
        ));
    }

    #[test]
    fn columns_collects_dedup_sorted() {
        let p = Expr::and(
            Expr::eq(Expr::col(3), Expr::col(1)),
            Expr::lt(Expr::col(1), Expr::value(5)),
        );
        assert_eq!(p.columns(), vec![1, 3]);
    }

    #[test]
    fn remap_fails_when_column_unmapped() {
        let p = Expr::eq(Expr::col(0), Expr::col(2));
        let mapped = p.remap_columns(&|i| if i == 0 { Some(0) } else { None });
        assert!(mapped.is_none());
        let ok = p.remap_columns(&|i| Some(i));
        assert_eq!(ok, Some(p));
    }

    #[test]
    fn all_builds_conjunction() {
        assert_eq!(Expr::all([]), Expr::True);
        let t = tuple![1];
        let p = Expr::all([
            Expr::eq(Expr::col(0), Expr::value(1)),
            Expr::lt(Expr::col(0), Expr::value(2)),
        ]);
        assert!(p.matches(&t).unwrap());
    }
}
