//! Relation names, attributes and schemas.

use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Interned name of a base relation (e.g. `R`, `S`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelationName(Arc<str>);

impl RelationName {
    pub fn new(name: impl AsRef<str>) -> Self {
        RelationName(Arc::from(name.as_ref()))
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RelationName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RelationName {
    fn from(s: &str) -> Self {
        RelationName::new(s)
    }
}

impl From<String> for RelationName {
    fn from(s: String) -> Self {
        RelationName::new(s)
    }
}

impl From<&String> for RelationName {
    fn from(s: &String) -> Self {
        RelationName::new(s)
    }
}

/// One attribute: a name and a declared type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    pub name: String,
    pub ty: ValueType,
}

impl Attribute {
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }

    /// Shorthand for an `Int` attribute (the common case in the paper's
    /// examples).
    pub fn int(name: impl Into<String>) -> Self {
        Attribute::new(name, ValueType::Int)
    }

    pub fn str(name: impl Into<String>) -> Self {
        Attribute::new(name, ValueType::Str)
    }

    pub fn float(name: impl Into<String>) -> Self {
        Attribute::new(name, ValueType::Float)
    }
}

/// Errors raised by schema validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A tuple's arity does not match the schema.
    ArityMismatch { expected: usize, actual: usize },
    /// A tuple value's type does not match the declared attribute type.
    TypeMismatch {
        attribute: String,
        expected: ValueType,
        actual: ValueType,
    },
    /// An attribute name was not found during resolution.
    UnknownAttribute(String),
    /// An attribute position is out of range.
    PositionOutOfRange { position: usize, arity: usize },
    /// Duplicate attribute name in a schema.
    DuplicateAttribute(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::ArityMismatch { expected, actual } => {
                write!(f, "arity mismatch: expected {expected}, got {actual}")
            }
            SchemaError::TypeMismatch {
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch on `{attribute}`: expected {expected}, got {actual}"
            ),
            SchemaError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            SchemaError::PositionOutOfRange { position, arity } => {
                write!(f, "position {position} out of range for arity {arity}")
            }
            SchemaError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute `{name}`")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// An ordered list of attributes. Cheap to clone (`Arc` inside).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Arc<[Attribute]>,
}

impl Schema {
    /// Build a schema; rejects duplicate attribute names.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, SchemaError> {
        let mut seen = std::collections::HashSet::new();
        for a in &attributes {
            if !seen.insert(a.name.as_str()) {
                return Err(SchemaError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Schema {
            attributes: attributes.into(),
        })
    }

    /// Schema of all-`Int` attributes with the given names — the shape of
    /// every example in the paper.
    pub fn ints(names: &[&str]) -> Self {
        Schema::new(names.iter().map(|n| Attribute::int(*n)).collect())
            .expect("duplicate names in Schema::ints")
    }

    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    pub fn attribute(&self, i: usize) -> Option<&Attribute> {
        self.attributes.get(i)
    }

    /// Position of an attribute by name.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// Resolve a name to a position, with error.
    pub fn resolve(&self, name: &str) -> Result<usize, SchemaError> {
        self.position_of(name)
            .ok_or_else(|| SchemaError::UnknownAttribute(name.to_owned()))
    }

    /// Concatenation for joins. Attribute names are qualified on collision
    /// by suffixing `_2`, `_3`, … so the result is a valid schema.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut attrs: Vec<Attribute> = self.attributes.to_vec();
        let mut names: std::collections::HashSet<String> =
            attrs.iter().map(|a| a.name.clone()).collect();
        for a in other.attributes.iter() {
            let mut candidate = a.name.clone();
            let mut k = 2usize;
            while names.contains(&candidate) {
                candidate = format!("{}_{k}", a.name);
                k += 1;
            }
            names.insert(candidate.clone());
            attrs.push(Attribute::new(candidate, a.ty));
        }
        Schema {
            attributes: attrs.into(),
        }
    }

    /// Projection onto positions, validating range.
    pub fn project(&self, positions: &[usize]) -> Result<Schema, SchemaError> {
        let mut attrs = Vec::with_capacity(positions.len());
        for &p in positions {
            let a = self
                .attributes
                .get(p)
                .ok_or(SchemaError::PositionOutOfRange {
                    position: p,
                    arity: self.arity(),
                })?;
            attrs.push(a.clone());
        }
        // projection may duplicate names; disambiguate like concat
        let mut out: Vec<Attribute> = Vec::with_capacity(attrs.len());
        let mut names = std::collections::HashSet::new();
        for a in attrs {
            let mut candidate = a.name.clone();
            let mut k = 2usize;
            while names.contains(&candidate) {
                candidate = format!("{}_{k}", a.name);
                k += 1;
            }
            names.insert(candidate.clone());
            out.push(Attribute::new(candidate, a.ty));
        }
        Ok(Schema {
            attributes: out.into(),
        })
    }

    /// Validate a tuple against this schema. `Null` is accepted at any
    /// position (nullable attributes).
    pub fn check(&self, tuple: &crate::tuple::Tuple) -> Result<(), SchemaError> {
        if tuple.arity() != self.arity() {
            return Err(SchemaError::ArityMismatch {
                expected: self.arity(),
                actual: tuple.arity(),
            });
        }
        for (i, a) in self.attributes.iter().enumerate() {
            let v = tuple.get(i);
            if v.is_null() {
                continue;
            }
            let vt = v.value_type();
            let compatible = vt == a.ty || matches!((a.ty, vt), (ValueType::Float, ValueType::Int));
            if !compatible {
                return Err(SchemaError::TypeMismatch {
                    attribute: a.name.clone(),
                    expected: a.ty,
                    actual: vt,
                });
            }
        }
        Ok(())
    }

    /// The type a value must have to be stored under attribute `i`.
    pub fn value_type(&self, i: usize) -> Option<ValueType> {
        self.attributes.get(i).map(|a| a.ty)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

/// Helper: value conforms to type?
pub fn value_conforms(v: &Value, ty: ValueType) -> bool {
    v.is_null()
        || v.value_type() == ty
        || matches!((ty, v.value_type()), (ValueType::Float, ValueType::Int))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![Attribute::int("a"), Attribute::int("a")]).unwrap_err();
        assert_eq!(err, SchemaError::DuplicateAttribute("a".into()));
    }

    #[test]
    fn resolves_positions() {
        let s = Schema::ints(&["a", "b", "c"]);
        assert_eq!(s.resolve("b").unwrap(), 1);
        assert!(matches!(
            s.resolve("z"),
            Err(SchemaError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn concat_qualifies_collisions() {
        let s = Schema::ints(&["a", "b"]);
        let t = Schema::ints(&["b", "c"]);
        let joined = s.concat(&t);
        let names: Vec<_> = joined
            .attributes()
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "b_2", "c"]);
    }

    #[test]
    fn check_validates_arity_and_types() {
        let s = Schema::ints(&["a", "b"]);
        assert!(s.check(&tuple![1, 2]).is_ok());
        assert!(matches!(
            s.check(&tuple![1]),
            Err(SchemaError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check(&tuple![1, "x"]),
            Err(SchemaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn check_accepts_nulls_and_int_widening() {
        let s = Schema::new(vec![Attribute::float("f"), Attribute::int("i")]).unwrap();
        assert!(s.check(&tuple![1, 2]).is_ok()); // int accepted where float declared
        assert!(s
            .check(&crate::tuple::Tuple::new(vec![Value::Null, Value::Null]))
            .is_ok());
    }

    #[test]
    fn project_disambiguates_duplicates() {
        let s = Schema::ints(&["a", "b"]);
        let p = s.project(&[0, 0]).unwrap();
        let names: Vec<_> = p.attributes().iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["a", "a_2"]);
        assert!(matches!(
            s.project(&[5]),
            Err(SchemaError::PositionOutOfRange { .. })
        ));
    }
}
