//! A named collection of relations, and the state-provider abstraction the
//! evaluator reads from.

use crate::catalog::Catalog;
use crate::delta::Delta;
use crate::relation::Relation;
use crate::schema::{RelationName, SchemaError};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Anything that can supply the contents of a base relation for query
/// evaluation: an in-memory [`Database`], an MVCC as-of snapshot, or a
/// remote source's query service.
///
/// `fetch` returns a [`Cow`] so providers that already hold the requested
/// state (a database reading its own map, an MVCC log whose checkpoint or
/// current contents match the requested seq) lend it zero-copy; only
/// providers that must *reconstruct* state allocate.
pub trait StateProvider {
    /// Fetch a relation's contents by name. `None` when unknown.
    fn fetch(&self, name: &RelationName) -> Option<Cow<'_, Relation>>;
}

/// In-memory database: one [`Relation`] per name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Database {
    relations: BTreeMap<RelationName, Relation>,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    /// Create one empty relation per catalog entry.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut db = Database::new();
        for name in catalog.names() {
            let schema = catalog.schema(name).expect("name from iterator");
            db.relations
                .insert(name.clone(), Relation::new(schema.clone()));
        }
        db
    }

    pub fn insert_relation(&mut self, name: impl Into<RelationName>, rel: Relation) {
        self.relations.insert(name.into(), rel);
    }

    pub fn relation(&self, name: &RelationName) -> Option<&Relation> {
        self.relations.get(name)
    }

    pub fn relation_mut(&mut self, name: &RelationName) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &RelationName> {
        self.relations.keys()
    }

    pub fn len(&self) -> usize {
        self.relations.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Apply a delta to a named relation.
    pub fn apply(&mut self, name: &RelationName, delta: &Delta) -> Result<(), SchemaError> {
        let rel = self
            .relations
            .get_mut(name)
            .ok_or_else(|| SchemaError::UnknownAttribute(format!("relation `{name}`")))?;
        delta.apply_to(rel)
    }

    /// Content fingerprint over all relations (order-independent by name).
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        for (name, rel) in &self.relations {
            name.as_str().hash(&mut h);
            rel.fingerprint().hash(&mut h);
        }
        h.finish()
    }
}

impl StateProvider for Database {
    fn fetch(&self, name: &RelationName) -> Option<Cow<'_, Relation>> {
        self.relations.get(name).map(Cow::Borrowed)
    }
}

/// A provider that overlays explicit replacement relations on a base
/// provider — used by delta rules to evaluate "all relations at state X
/// except the changed one replaced by its delta".
pub struct Overlay<'a, P: StateProvider + ?Sized> {
    base: &'a P,
    replacements: BTreeMap<RelationName, Relation>,
}

impl<'a, P: StateProvider + ?Sized> Overlay<'a, P> {
    pub fn new(base: &'a P) -> Self {
        Overlay {
            base,
            replacements: BTreeMap::new(),
        }
    }

    pub fn replace(mut self, name: impl Into<RelationName>, rel: Relation) -> Self {
        self.replacements.insert(name.into(), rel);
        self
    }
}

impl<P: StateProvider + ?Sized> StateProvider for Overlay<'_, P> {
    fn fetch(&self, name: &RelationName) -> Option<Cow<'_, Relation>> {
        match self.replacements.get(name) {
            Some(r) => Some(Cow::Borrowed(r)),
            None => self.base.fetch(name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;

    #[test]
    fn from_catalog_creates_empty_relations() {
        let cat = Catalog::new().with("R", Schema::ints(&["a"]));
        let db = Database::from_catalog(&cat);
        assert!(db.relation(&"R".into()).unwrap().is_empty());
    }

    #[test]
    fn apply_delta() {
        let cat = Catalog::new().with("R", Schema::ints(&["a"]));
        let mut db = Database::from_catalog(&cat);
        let mut d = Delta::new();
        d.insert(tuple![1]);
        db.apply(&"R".into(), &d).unwrap();
        assert!(db.relation(&"R".into()).unwrap().contains(&tuple![1]));
        assert!(db.apply(&"Z".into(), &d).is_err());
    }

    #[test]
    fn overlay_shadows_base() {
        let cat = Catalog::new().with("R", Schema::ints(&["a"]));
        let mut db = Database::from_catalog(&cat);
        let mut d = Delta::new();
        d.insert(tuple![1]);
        db.apply(&"R".into(), &d).unwrap();

        let mut replacement = Relation::new(Schema::ints(&["a"]));
        replacement.insert(tuple![9]).unwrap();
        let ov = Overlay::new(&db).replace("R", replacement);
        let fetched = ov.fetch(&"R".into()).unwrap();
        assert!(fetched.contains(&tuple![9]));
        assert!(!fetched.contains(&tuple![1]));
    }

    #[test]
    fn fingerprint_changes_with_content() {
        let cat = Catalog::new().with("R", Schema::ints(&["a"]));
        let mut db = Database::from_catalog(&cat);
        let f0 = db.fingerprint();
        let mut d = Delta::new();
        d.insert(tuple![1]);
        db.apply(&"R".into(), &d).unwrap();
        assert_ne!(f0, db.fingerprint());
    }
}
