//! Scalar values stored in tuples.
//!
//! The engine is dynamically typed at the value level (like the WHIPS
//! prototype's wrapper layer): every attribute position holds a [`Value`].
//! Values have a total order so they can be used as keys in ordered
//! containers and compared by predicates; floats are ordered by
//! `f64::total_cmp`, with `Null` sorting first.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A dynamically typed scalar value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL-style NULL. Compares equal to itself here (bag semantics need a
    /// decidable equality); predicates treat comparisons with `Null` as
    /// false except explicit `IsNull` tests.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, totally ordered via `total_cmp`.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// String value from anything string-like.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The [`ValueType`] tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as boolean for predicate evaluation (`Null`/non-bool → `None`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view used by arithmetic: ints widen to floats when mixed.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// SQL-style three-valued comparison: `None` when either side is null
    /// or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            _ => None,
        }
    }
}

/// Total order used for container keys and deterministic output: groups by
/// type tag first, then by value. Distinct from [`Value::sql_cmp`], which
/// is the SQL-predicate comparison.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn tag(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Str(_) => 4,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => tag(self).cmp(&tag(other)),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Type tags for schema declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    Null,
    Bool,
    Int,
    Float,
    Str,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Null => "null",
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_groups_by_type() {
        let mut vs = [
            Value::str("a"),
            Value::Int(1),
            Value::Null,
            Value::Float(0.5),
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert!(matches!(vs[1], Value::Bool(_)));
        assert!(matches!(vs[2], Value::Int(_)));
        assert!(matches!(vs[3], Value::Float(_)));
        assert!(matches!(vs[4], Value::Str(_)));
    }

    #[test]
    fn sql_cmp_mixes_numeric_types() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_incomparable_types() {
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("1").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        let mut set = std::collections::HashSet::new();
        set.insert(nan.clone());
        assert!(set.contains(&nan));
    }

    #[test]
    fn display_round_trips_simply() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Int(7)));
        assert_eq!(h(&Value::Float(1.0)), h(&Value::Float(1.0)));
    }
}
