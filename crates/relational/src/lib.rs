//! # mvc-relational
//!
//! Bag-relational engine underpinning the MVC warehouse reproduction:
//! values, tuples, schemas, multiset relations, scalar expressions,
//! select-project-join and aggregate view definitions, a hash-join
//! evaluator, and exact incremental view maintenance (the counting/delta
//! rule the paper's view managers rely on).
//!
//! Everything here is deterministic: relations iterate in sorted order so
//! higher layers can pin golden outputs byte-for-byte.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod database;
pub mod delta;
pub mod eval;
pub mod expr;
pub mod maintain;
pub mod relation;
pub mod schema;
pub mod sql;
pub mod tuple;
pub mod value;
pub mod viewdef;

pub use catalog::Catalog;
pub use database::{Database, Overlay, StateProvider};
pub use delta::{Delta, TupleOp};
pub use eval::{
    diff, eval_core, eval_core_with, eval_join_with, eval_view, project_delta, project_relation,
    EvalError,
};
pub use expr::{ArithOp, CmpOp, Expr, ExprError};
pub use relation::Relation;
pub use schema::{Attribute, RelationName, Schema, SchemaError};
pub use sql::{parse_view, SqlError};
pub use tuple::Tuple;
pub use value::{Value, ValueType};
pub use viewdef::{AggFunc, Aggregate, SpjCore, ViewDef, ViewDefBuilder, ViewName};
