//! Tuples: immutable, cheaply clonable rows of [`Value`]s.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An immutable row. Backed by `Arc<[Value]>` so cloning a tuple while it
/// flows through update streams, action lists and materialized views is a
/// reference-count bump, not a deep copy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from owned values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `i` (panics when out of range, like slice indexing).
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Checked access.
    pub fn try_get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Concatenate two tuples (used by joins).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.values);
        v.extend_from_slice(&other.values);
        Tuple::new(v)
    }

    /// Project onto the given positions (panics when a position is out of
    /// range — schemas are validated before evaluation).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(positions.iter().map(|&i| self.values[i].clone()).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Convenience macro: `tuple![1, "a", 2.5]` builds a [`Tuple`] by
/// converting each element with `Into<Value>`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_converted_values() {
        let t = tuple![1, "a", 2.5, true];
        assert_eq!(t.arity(), 4);
        assert_eq!(t.get(0), &Value::Int(1));
        assert_eq!(t.get(1), &Value::str("a"));
        assert_eq!(t.get(2), &Value::Float(2.5));
        assert_eq!(t.get(3), &Value::Bool(true));
    }

    #[test]
    fn concat_preserves_order() {
        let a = tuple![1, 2];
        let b = tuple![3];
        assert_eq!(a.concat(&b), tuple![1, 2, 3]);
    }

    #[test]
    fn project_selects_positions() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0]), tuple![30, 10]);
        assert_eq!(t.project(&[]), Tuple::new(vec![]));
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple![1, 2, 3];
        let u = t.clone();
        assert!(Arc::ptr_eq(&t.values, &u.values));
    }

    #[test]
    fn display_is_bracketed() {
        assert_eq!(tuple![2, 3].to_string(), "[2, 3]");
    }

    #[test]
    fn try_get_out_of_range() {
        assert!(tuple![1].try_get(1).is_none());
    }
}
